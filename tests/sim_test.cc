/**
 * @file
 * Tests for the cost model: EMA accounting (Figure 1's Min-EMA
 * identity), energy composition, latency roofline, fusion benefits
 * (the Figure 3 effect), multi-core and batch trends (Table 3
 * shapes), and profile memoization.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>

#include "core/serialize.h"
#include "models/models.h"
#include "sim/cost_model.h"
#include "sim/multicore.h"
#include "sim/platform.h"
#include "partition/repair.h"
#include "util/json.h"

using namespace cocco;

namespace {

Layer
mkLayer(const char *name, LayerKind kind, int h, int w, int c, int k = 1,
        int s = 1)
{
    Layer l;
    l.name = name;
    l.kind = kind;
    l.outH = h;
    l.outW = w;
    l.outC = c;
    l.kernel = k;
    l.stride = s;
    return l;
}

/** input(32x32x8) -> convA(3x3) -> convB(3x3) chain. */
Graph
chain()
{
    Graph g("chain");
    g.addNode(mkLayer("in", LayerKind::Input, 32, 32, 8));
    g.addNode(mkLayer("a", LayerKind::Conv, 32, 32, 8, 3, 1), {0});
    g.addNode(mkLayer("b", LayerKind::Conv, 32, 32, 8, 3, 1), {1});
    return g;
}

BufferConfig
bigSeparate()
{
    BufferConfig c;
    c.style = BufferStyle::Separate;
    c.actBytes = 1024 * 1024;
    c.weightBytes = 1152 * 1024;
    return c;
}

} // namespace

// --- Accelerator configuration -------------------------------------------

TEST(Accelerator, PaperPlatformNumbers)
{
    AcceleratorConfig a;
    EXPECT_EQ(a.macsPerCycle(), 1024); // 4x4 PEs x 8x8 MACs
    EXPECT_NEAR(a.peakTops(), 2.048, 1e-9);
    EXPECT_NEAR(a.dramBytesPerCycle(), 16.0, 1e-9);
}

// --- Platform presets ------------------------------------------------------

namespace {

/** Field-wise equality over everything the cost model reads. */
void
expectSameAccel(const AcceleratorConfig &a, const AcceleratorConfig &b)
{
    EXPECT_EQ(a.peRows, b.peRows);
    EXPECT_EQ(a.peCols, b.peCols);
    EXPECT_EQ(a.macsPerPe, b.macsPerPe);
    EXPECT_DOUBLE_EQ(a.clockGhz, b.clockGhz);
    EXPECT_DOUBLE_EQ(a.dramGBpsPerCore, b.dramGBpsPerCore);
    EXPECT_EQ(a.maxRegions, b.maxRegions);
    EXPECT_EQ(a.channelAlign, b.channelAlign);
    EXPECT_EQ(a.doubleBufferWeights, b.doubleBufferWeights);
    EXPECT_EQ(a.cores, b.cores);
    EXPECT_EQ(a.batch, b.batch);
    EXPECT_DOUBLE_EQ(a.crossbarBytesPerCycle, b.crossbarBytesPerCycle);
    EXPECT_DOUBLE_EQ(a.energy.dramPjPerByte, b.energy.dramPjPerByte);
    EXPECT_DOUBLE_EQ(a.energy.sramBasePjPerByte,
                     b.energy.sramBasePjPerByte);
    EXPECT_DOUBLE_EQ(a.energy.sramSlopePjPerByte,
                     b.energy.sramSlopePjPerByte);
    EXPECT_DOUBLE_EQ(a.energy.macPj, b.energy.macPj);
    EXPECT_DOUBLE_EQ(a.energy.crossbarPjPerByte,
                     b.energy.crossbarPjPerByte);
    EXPECT_DOUBLE_EQ(a.energy.sramAreaMm2PerMB,
                     b.energy.sramAreaMm2PerMB);
}

} // namespace

TEST(Platform, SimbaPresetIsThePaperPlatform)
{
    expectSameAccel(platformPreset("simba"), AcceleratorConfig{});
}

TEST(Platform, BuiltinPresetsRegistered)
{
    const PlatformRegistry &reg = PlatformRegistry::instance();
    std::vector<std::string> keys = reg.keys();
    ASSERT_GE(keys.size(), 4u);
    EXPECT_EQ(keys[0], "simba");
    for (const std::string &k : keys) {
        EXPECT_TRUE(reg.contains(k));
        EXPECT_FALSE(reg.summary(k).empty());
        AcceleratorConfig c;
        EXPECT_TRUE(reg.find(k, &c));
        EXPECT_GT(c.peakTops(), 0.0);
    }
    EXPECT_TRUE(reg.contains("edge"));
    EXPECT_TRUE(reg.contains("cloud"));
    EXPECT_EQ(platformPreset("simba-x4").cores, 4);
}

TEST(Platform, UnknownPresetIsACleanUserError)
{
    // Lookup: a false return, never a crash.
    const PlatformRegistry &reg = PlatformRegistry::instance();
    AcceleratorConfig c;
    EXPECT_FALSE(reg.contains("tpu"));
    EXPECT_FALSE(reg.find("tpu", &c));

    // Resolution: an error message naming the known presets.
    PlatformSpec spec;
    spec.preset = "tpu";
    std::string err;
    EXPECT_FALSE(resolvePlatform(spec, &c, &err));
    EXPECT_NE(err.find("unknown platform"), std::string::npos);
    EXPECT_NE(err.find("simba"), std::string::npos);
}

TEST(PlatformDeath, PresetHelperIsFatalWithKnownList)
{
    EXPECT_EXIT(platformPreset("tpu"), ::testing::ExitedWithCode(1),
                "unknown platform");
}

TEST(Platform, JsonRoundTripEveryPreset)
{
    for (const std::string &name : PlatformRegistry::instance().keys()) {
        AcceleratorConfig preset = platformPreset(name);
        JsonValue doc;
        std::string err;
        ASSERT_TRUE(parseJson(acceleratorToJson(preset), &doc, &err))
            << name << ": " << err;
        AcceleratorConfig copy;
        ASSERT_TRUE(acceleratorFromJson(doc, &copy, &err))
            << name << ": " << err;
        expectSameAccel(copy, preset);
    }
}

TEST(Platform, JsonBaseAndOverrides)
{
    JsonValue doc;
    std::string err;
    ASSERT_TRUE(parseJson(R"({"base": "edge", "cores": 2})", &doc, &err));
    AcceleratorConfig c;
    ASSERT_TRUE(acceleratorFromJson(doc, &c, &err)) << err;
    EXPECT_EQ(c.peRows, 2);                 // from the edge base
    EXPECT_DOUBLE_EQ(c.dramGBpsPerCore, 8.0);
    EXPECT_EQ(c.cores, 2);                  // the override
}

TEST(Platform, JsonRejectsMalformedDocuments)
{
    auto reject = [](const char *text, const char *needle) {
        JsonValue doc;
        std::string err;
        ASSERT_TRUE(parseJson(text, &doc, &err)) << err;
        AcceleratorConfig c;
        EXPECT_FALSE(acceleratorFromJson(doc, &c, &err)) << text;
        EXPECT_NE(err.find(needle), std::string::npos) << err;
    };
    reject(R"({"peRowz": 4})", "peRowz");            // unknown key
    reject(R"({"peRows": "four"})", "peRows");       // type mismatch
    reject(R"({"peRows": 0})", ">= 1");              // domain
    reject(R"({"clockGhz": -1.0})", "> 0");          // domain
    reject(R"({"base": "tpu"})", "unknown platform"); // bad base
    reject(R"({"energy": {"macPj": -0.1}})", ">= 0"); // negative energy
    reject(R"({"energy": {"watts": 1}})", "watts");  // unknown energy key
    reject(R"({"batch": 2.5})", "integer");          // non-integer
}

TEST(Platform, FileRoundTripAndResolution)
{
    AcceleratorConfig cloud = platformPreset("cloud");
    std::string path = ::testing::TempDir() + "cocco_platform_rt.json";
    ASSERT_TRUE(savePlatformJson(cloud, path));

    AcceleratorConfig loaded;
    std::string err;
    ASSERT_TRUE(loadPlatformJson(path, &loaded, &err)) << err;
    expectSameAccel(loaded, cloud);

    // The same file through the spec resolver.
    PlatformSpec spec;
    spec.file = path;
    AcceleratorConfig resolved;
    ASSERT_TRUE(resolvePlatform(spec, &resolved, &err)) << err;
    expectSameAccel(resolved, cloud);
    std::remove(path.c_str());
}

TEST(Platform, ResolveDefaultsToSimbaAndRejectsConflicts)
{
    PlatformSpec spec;
    AcceleratorConfig c;
    std::string err;
    ASSERT_TRUE(resolvePlatform(spec, &c, &err)) << err;
    expectSameAccel(c, AcceleratorConfig{});

    spec.preset = "simba";
    spec.file = "also-a-file.json";
    EXPECT_FALSE(resolvePlatform(spec, &c, &err));
    EXPECT_NE(err.find("not several"), std::string::npos);
}

// --- Subgraph profiles ----------------------------------------------------

TEST(Profile, SingleLayerInOutWeights)
{
    Graph g = chain();
    CostModel model(g, {});
    const SubgraphProfile &p = model.profile({1});
    EXPECT_EQ(p.inBytes, 32LL * 32 * 8);
    EXPECT_EQ(p.outBytes, 32LL * 32 * 8);
    EXPECT_EQ(p.weightBytes, 3LL * 3 * 8 * 8);
    EXPECT_EQ(p.macs, g.macs(1));
    EXPECT_EQ(p.nodeCount, 1);
}

TEST(Profile, FusedPairHidesIntermediate)
{
    Graph g = chain();
    CostModel model(g, {});
    const SubgraphProfile &p = model.profile({1, 2});
    // Input of the pair is the graph input; output is b; a's tensor
    // never leaves the chip.
    EXPECT_EQ(p.inBytes, 32LL * 32 * 8);
    EXPECT_EQ(p.outBytes, 32LL * 32 * 8);
    EXPECT_EQ(p.weightBytes, 2LL * 3 * 3 * 8 * 8);
}

TEST(Profile, MemoizationReturnsSameObject)
{
    Graph g = chain();
    CostModel model(g, {});
    const SubgraphProfile &p1 = model.profile({1, 2});
    const SubgraphProfile &p2 = model.profile({2, 1}); // order-insensitive
    EXPECT_EQ(&p1, &p2);
    EXPECT_EQ(model.cacheSize(), 1u);
}

// --- EMA accounting --------------------------------------------------------

TEST(Ema, MinEmaIdentityForWholeGraphFusion)
{
    // Figure 1 (right): with a buffer large enough for everything,
    // EMA = weights + model input + model output.
    Graph g = chain();
    AcceleratorConfig accel;
    CostModel model(g, accel);

    BufferConfig buf;
    buf.style = BufferStyle::Shared;
    buf.sharedBytes = 64 * 1024 * 1024;

    SubgraphCost c = model.subgraphCost({1, 2}, buf);
    ASSERT_TRUE(c.feasible);
    EXPECT_EQ(c.emaBytes,
              g.totalWeightBytes() + g.outBytes(0) + g.outBytes(2));
}

TEST(Ema, LayerwiseWritesIntermediates)
{
    Graph g = chain();
    CostModel model(g, {});
    BufferConfig buf = bigSeparate();

    int64_t fused = model.subgraphCost({1, 2}, buf).emaBytes;
    int64_t split = model.subgraphCost({1}, buf).emaBytes +
                    model.subgraphCost({2}, buf).emaBytes;
    // Split pays the intermediate tensor twice (store + reload).
    EXPECT_EQ(split - fused, 2 * g.outBytes(1));
}

TEST(Ema, MultiConsumerTensorReloadedPerSubgraph)
{
    Graph g("fork");
    g.addNode(mkLayer("in", LayerKind::Input, 16, 16, 8));
    g.addNode(mkLayer("a", LayerKind::Conv, 16, 16, 8, 3, 1), {0});
    g.addNode(mkLayer("b", LayerKind::Conv, 16, 16, 8, 3, 1), {1});
    g.addNode(mkLayer("c", LayerKind::Conv, 16, 16, 8, 3, 1), {1});
    CostModel model(g, {});
    BufferConfig buf = bigSeparate();

    // a executed alone; b and c each reload a's tensor.
    int64_t ema_b = model.subgraphCost({2}, buf).emaBytes;
    int64_t ema_c = model.subgraphCost({3}, buf).emaBytes;
    EXPECT_EQ(model.profile({2}).inBytes, g.outBytes(1));
    EXPECT_EQ(model.profile({3}).inBytes, g.outBytes(1));
    EXPECT_GT(ema_b + ema_c, 2 * g.outBytes(1));
}

TEST(Ema, OversizedSingletonWeightsPayReload)
{
    // FC layer with weights far beyond the weight buffer.
    Graph g("fat");
    g.addNode(mkLayer("in", LayerKind::Input, 1, 1, 4096));
    g.addNode(mkLayer("fc", LayerKind::Conv, 1, 1, 4096, 1, 1), {0});
    CostModel model(g, {});

    BufferConfig small;
    small.style = BufferStyle::Separate;
    small.actBytes = 256 * 1024;
    small.weightBytes = 144 * 1024;

    BufferConfig large;
    large.style = BufferStyle::Separate;
    large.actBytes = 256 * 1024;
    large.weightBytes = 32 * 1024 * 1024;

    SubgraphCost c_small = model.subgraphCost({1}, small);
    SubgraphCost c_large = model.subgraphCost({1}, large);
    EXPECT_TRUE(c_small.feasible); // singletons always executable
    EXPECT_GT(c_small.emaBytes, c_large.emaBytes);
}

// --- Feasibility -----------------------------------------------------------

TEST(Feasibility, MultiNodeRejectedWhenWeightsOverflow)
{
    Graph g = chain();
    CostModel model(g, {});
    BufferConfig buf;
    buf.style = BufferStyle::Separate;
    buf.actBytes = 1024 * 1024;
    buf.weightBytes = 512; // less than the two convs' 1152 B
    EXPECT_FALSE(model.fits({1, 2}, buf));
    EXPECT_TRUE(model.fits({1}, buf)); // singleton fallback
}

TEST(Feasibility, SharedBufferCountsActsPlusWeights)
{
    Graph g = chain();
    CostModel model(g, {});
    const SubgraphProfile &p = model.profile({1, 2});

    BufferConfig just_enough;
    just_enough.style = BufferStyle::Shared;
    just_enough.sharedBytes = p.actFootprintBytes + p.weightBytes;
    EXPECT_TRUE(model.fits({1, 2}, just_enough));

    BufferConfig too_small = just_enough;
    too_small.sharedBytes -= 1;
    EXPECT_FALSE(model.fits({1, 2}, too_small));
}

TEST(Feasibility, RegionLimitEnforced)
{
    // A 70-layer chain exceeds the 64-region manager as one subgraph.
    Graph g("long");
    g.addNode(mkLayer("in", LayerKind::Input, 8, 8, 4));
    for (int i = 0; i < 70; ++i)
        g.addNode(mkLayer(("c" + std::to_string(i)).c_str(),
                          LayerKind::Conv, 8, 8, 4, 1, 1),
                  {i});
    CostModel model(g, {});
    std::vector<NodeId> all;
    for (NodeId v = 1; v < g.size(); ++v)
        all.push_back(v);
    BufferConfig buf;
    buf.style = BufferStyle::Shared;
    buf.sharedBytes = 64 * 1024 * 1024;
    EXPECT_FALSE(model.fits(all, buf));
}

// --- Energy ----------------------------------------------------------------

TEST(Energy, ComposedOfDramSramMacTerms)
{
    Graph g = chain();
    AcceleratorConfig accel;
    CostModel model(g, accel);
    BufferConfig buf = bigSeparate();

    SubgraphCost c = model.subgraphCost({1, 2}, buf);
    const SubgraphProfile &p = model.profile({1, 2});
    double dram = accel.energy.dramEnergyPj(c.emaBytes);
    double mac = accel.energy.macEnergyPj(p.macs);
    EXPECT_GT(c.energyPj, dram + mac);
    EXPECT_LT(c.energyPj, 2.0 * (dram + mac) + 1e6);
}

TEST(Energy, LargerBufferCostsMorePerAccess)
{
    Graph g = chain();
    CostModel model(g, {});

    BufferConfig small = bigSeparate();
    small.actBytes = 128 * 1024;
    BufferConfig large = bigSeparate();
    large.actBytes = 2048 * 1024;

    // Same EMA/work; only SRAM access energy changes.
    SubgraphCost cs = model.subgraphCost({1}, small);
    SubgraphCost cl = model.subgraphCost({1}, large);
    ASSERT_EQ(cs.emaBytes, cl.emaBytes);
    EXPECT_LT(cs.energyPj, cl.energyPj);
}

// --- Latency ----------------------------------------------------------------

TEST(Latency, RooflineMaxOfComputeAndComm)
{
    Graph g = chain();
    CostModel model(g, {});
    SubgraphCost c = model.subgraphCost({1, 2}, bigSeparate());
    EXPECT_DOUBLE_EQ(c.latencyCycles,
                     std::max(c.computeCycles, c.commCycles));
}

TEST(Latency, ResNet50ComputeBoundNearFourMs)
{
    Graph g = buildResNet50();
    AcceleratorConfig accel;
    CostModel model(g, accel);
    std::vector<NodeId> all;
    for (NodeId v = 0; v < g.size(); ++v)
        if (!g.isInput(v))
            all.push_back(v);
    // Compute cycles for the whole model: ~4.1 GMACs / 1024 per cycle.
    double cycles = 0;
    for (NodeId v : all)
        cycles += static_cast<double>(g.macs(v));
    cycles /= accel.macsPerCycle();
    EXPECT_NEAR(cycles / 1e6, 4.0, 0.6); // ~4 ms at 1 GHz
}

// --- Partition-level aggregation --------------------------------------------

TEST(PartitionCost, SumsSubgraphs)
{
    Graph g = chain();
    CostModel model(g, {});
    BufferConfig buf = bigSeparate();

    Partition p = Partition::singletons(g);
    GraphCost gc = model.partitionCost(p, buf);
    EXPECT_TRUE(gc.feasible);
    EXPECT_EQ(gc.subgraphs, 3);

    int64_t manual = model.subgraphCost({0}, buf).emaBytes +
                     model.subgraphCost({1}, buf).emaBytes +
                     model.subgraphCost({2}, buf).emaBytes;
    EXPECT_EQ(gc.emaBytes, manual);
}

TEST(PartitionCost, FusionReducesEmaOnRealModels)
{
    // The Figure 3 effect: L=3 fusion beats layer-level execution.
    Graph g = buildResNet50();
    AcceleratorConfig accel;
    CostModel model(g, accel);
    BufferConfig buf = bigSeparate();

    GraphCost l1 = model.partitionCost(Partition::singletons(g), buf);
    GraphCost l3 = model.partitionCost(Partition::fixedRuns(g, 3), buf);
    ASSERT_TRUE(l1.feasible);
    EXPECT_LT(l3.emaBytes, l1.emaBytes);
}

TEST(PartitionCost, AvgBandwidthConsistent)
{
    Graph g = chain();
    AcceleratorConfig accel;
    CostModel model(g, accel);
    GraphCost gc =
        model.partitionCost(Partition::singletons(g), bigSeparate());
    double expect = static_cast<double>(gc.emaBytes) / gc.latencyCycles *
                    accel.clockGhz;
    EXPECT_DOUBLE_EQ(gc.avgBwGBps, expect);
}

TEST(PartitionCost, MetricValueSelectsAxis)
{
    Graph g = chain();
    CostModel model(g, {});
    GraphCost gc =
        model.partitionCost(Partition::singletons(g), bigSeparate());
    EXPECT_EQ(gc.metricValue(Metric::EMA),
              static_cast<double>(gc.emaBytes));
    EXPECT_EQ(gc.metricValue(Metric::Energy), gc.energyPj);
}

// --- Formula 2 objective -----------------------------------------------------

TEST(Objective, LinearInBufferAndMetric)
{
    GraphCost gc;
    gc.feasible = true;
    gc.energyPj = 1e9;
    gc.emaBytes = 1000;
    BufferConfig buf;
    buf.style = BufferStyle::Shared;
    buf.sharedBytes = 500000;
    EXPECT_DOUBLE_EQ(objective(gc, buf, 0.002, Metric::Energy),
                     500000 + 0.002 * 1e9);
    EXPECT_DOUBLE_EQ(objective(gc, buf, 1.0, Metric::EMA), 501000.0);
}

TEST(Objective, InfeasiblePenalized)
{
    GraphCost gc;
    gc.feasible = false;
    BufferConfig buf;
    buf.style = BufferStyle::Shared;
    buf.sharedBytes = 1;
    EXPECT_GE(objective(gc, buf, 0.002, Metric::Energy),
              kInfeasiblePenalty);
}

// --- Batch trends (Table 3 shapes) -------------------------------------------

class BatchSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(BatchSweep, WeightsAmortizeAcrossBatch)
{
    int batch = GetParam();
    Graph g = chain();
    AcceleratorConfig accel;
    accel.batch = batch;
    CostModel model(g, accel);
    BufferConfig buf = bigSeparate();

    AcceleratorConfig accel1;
    CostModel model1(g, accel1);

    SubgraphCost cb = model.subgraphCost({1, 2}, buf);
    SubgraphCost c1 = model1.subgraphCost({1, 2}, buf);
    // EMA grows sub-linearly: activations scale, weights do not.
    if (batch > 1) {
        EXPECT_LT(cb.emaBytes, batch * c1.emaBytes);
    }
    EXPECT_GE(cb.emaBytes, c1.emaBytes);
    // Energy likewise.
    if (batch > 1) {
        EXPECT_LT(cb.energyPj, batch * c1.energyPj);
    }
}

INSTANTIATE_TEST_SUITE_P(Batches, BatchSweep, ::testing::Values(1, 2, 4, 8));

// --- Multi-core trends --------------------------------------------------------

class CoreSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(CoreSweep, LatencyDropsEnergyRises)
{
    int cores = GetParam();
    Graph g = buildGoogleNet();
    AcceleratorConfig accel;
    accel.cores = cores;
    CostModel model(g, accel);

    AcceleratorConfig base;
    CostModel model1(g, base);

    BufferConfig buf;
    buf.style = BufferStyle::Shared;
    buf.sharedBytes = 1024 * 1024;

    // Layer-level partition: always feasible on every core count.
    Partition p = Partition::singletons(g);
    GraphCost multi = model.partitionCost(p, buf);
    GraphCost single = model1.partitionCost(p, buf);
    ASSERT_TRUE(multi.feasible);
    if (cores > 1) {
        EXPECT_LT(multi.latencyCycles, single.latencyCycles);
        EXPECT_GT(multi.latencyCycles, single.latencyCycles / (2.0 * cores));
        EXPECT_GT(multi.energyPj, single.energyPj);
    } else {
        EXPECT_DOUBLE_EQ(multi.energyPj, single.energyPj);
    }
}

INSTANTIATE_TEST_SUITE_P(Cores, CoreSweep, ::testing::Values(1, 2, 4));

TEST(Multicore, CrossbarTermsVanishOnSingleCore)
{
    SubgraphProfile prof;
    prof.weightBytes = 1000;
    prof.inBytes = 500;
    AcceleratorConfig accel;
    accel.cores = 1;
    EXPECT_EQ(crossbarBytes(prof, accel), 0);
    EXPECT_DOUBLE_EQ(crossbarEnergyPj(prof, accel), 0.0);
    EXPECT_DOUBLE_EQ(crossbarCycles(prof, accel), 0.0);
}

TEST(Multicore, CrossbarTrafficScalesWithHops)
{
    SubgraphProfile prof;
    prof.weightBytes = 1000;
    prof.inBytes = 500;
    AcceleratorConfig accel;
    accel.cores = 4;
    accel.batch = 1;
    EXPECT_EQ(crossbarBytes(prof, accel), (1000 + 500) * 3);
}

TEST(Multicore, WeightShardingEnablesSmallerBuffers)
{
    // A weight-heavy two-layer subgraph that misses the weight budget
    // on one core but fits when sharded across four.
    Graph g("heavy");
    g.addNode(mkLayer("in", LayerKind::Input, 8, 8, 64));
    g.addNode(mkLayer("a", LayerKind::Conv, 8, 8, 64, 3, 1), {0});
    g.addNode(mkLayer("b", LayerKind::Conv, 8, 8, 64, 3, 1), {1});

    BufferConfig buf;
    buf.style = BufferStyle::Separate;
    buf.actBytes = 256 * 1024;
    buf.weightBytes = 40 * 1024; // < 2 * 36KB of weights

    AcceleratorConfig one;
    CostModel m1(g, one);
    EXPECT_FALSE(m1.fits({1, 2}, buf));

    AcceleratorConfig four;
    four.cores = 4;
    CostModel m4(g, four);
    EXPECT_TRUE(m4.fits({1, 2}, buf));
}

// --- Peak bandwidth (weight prefetch) ---------------------------------------

TEST(PeakBw, AtLeastAverage)
{
    Graph g = buildResNet50();
    AcceleratorConfig accel;
    CostModel model(g, accel);
    BufferConfig buf = bigSeparate();
    GraphCost gc = model.partitionCost(Partition::fixedRuns(g, 3), buf);
    EXPECT_GE(gc.peakBwGBps, 0.0);
    EXPECT_GT(gc.peakBwGBps, 0.5 * gc.avgBwGBps);
}

TEST(PeakBw, PrefetchRaisesDemand)
{
    // Two singleton subgraphs: the first window carries the second's
    // weights as prefetch, so its peak demand exceeds its own I/O
    // alone.
    Graph g = chain();
    AcceleratorConfig accel;
    CostModel model(g, accel);
    BufferConfig buf = bigSeparate();

    Partition p = Partition::singletons(g);
    GraphCost gc = model.partitionCost(p, buf);

    const SubgraphProfile &first = model.profile({1});
    SubgraphCost c1 = model.subgraphCost({1}, buf);
    double own = static_cast<double>(first.inBytes + first.outBytes) /
                 c1.latencyCycles * accel.clockGhz;
    EXPECT_GT(gc.peakBwGBps, own);
}

TEST(PeakBw, SingleSubgraphHasNoPrefetchTerm)
{
    Graph g = chain();
    AcceleratorConfig accel;
    CostModel model(g, accel);
    BufferConfig buf;
    buf.style = BufferStyle::Shared;
    buf.sharedBytes = 32 * 1024 * 1024;

    Partition p;
    p.block = {0, 0, 0};
    p.numBlocks = 1;
    GraphCost gc = model.partitionCost(p, buf);
    const SubgraphProfile &prof = model.profile({0, 1, 2});
    SubgraphCost c = model.subgraphCost({0, 1, 2}, buf);
    double expect = static_cast<double>(prof.inBytes + prof.outBytes) /
                    c.latencyCycles * accel.clockGhz;
    EXPECT_NEAR(gc.peakBwGBps, expect, 1e-9);
}

// --- Double-buffered weight prefetch ----------------------------------------

TEST(DoubleBuffer, AdjacentWeightsMustCoReside)
{
    Graph g = chain();
    AcceleratorConfig strict;
    strict.doubleBufferWeights = true;
    CostModel model(g, strict);

    // Each conv has 576 B of weights; singleton blocks need
    // 2 x 576 = 1152 B co-resident under strict prefetch.
    BufferConfig buf;
    buf.style = BufferStyle::Separate;
    buf.actBytes = 1024 * 1024;
    buf.weightBytes = 1151;
    Partition p = Partition::singletons(g);
    EXPECT_FALSE(model.partitionCost(p, buf).feasible);

    buf.weightBytes = 1152;
    EXPECT_TRUE(model.partitionCost(p, buf).feasible);

    // The default (banked prefetch) platform accepts the small buffer.
    AcceleratorConfig relaxed;
    CostModel model2(g, relaxed);
    buf.weightBytes = 600;
    EXPECT_TRUE(model2.partitionCost(p, buf).feasible);
}

TEST(DoubleBuffer, RepairSplitsHeavyNeighbours)
{
    Graph g = buildResNet50();
    AcceleratorConfig strict;
    strict.doubleBufferWeights = true;
    CostModel model(g, strict);

    BufferConfig buf;
    buf.style = BufferStyle::Separate;
    buf.actBytes = 1024 * 1024;
    // Large enough that every violating pair is repairable by
    // splitting (ResNet50's worst adjacent singletons hold ~3.4MB).
    buf.weightBytes = 3584 * 1024;

    Partition p = Partition::fixedRuns(g, 8);
    p = repairToCapacity(g, std::move(p), model, buf);
    EXPECT_TRUE(p.valid(g));
    // After repair, every adjacent pair of blocks fits the strict
    // constraint.
    auto blocks = p.blocks();
    for (size_t i = 0; i + 1 < blocks.size(); ++i) {
        int64_t pair = model.profile(blocks[i]).weightBytes +
                       model.profile(blocks[i + 1]).weightBytes;
        EXPECT_LE(pair, buf.weightBytes) << "pair " << i;
    }
    EXPECT_TRUE(model.partitionCost(p, buf).feasible);
}

TEST(DoubleBuffer, StrictModeNeverBeatsRelaxed)
{
    Graph g = buildGoogleNet();
    AcceleratorConfig strict;
    strict.doubleBufferWeights = true;
    CostModel strict_model(g, strict);
    CostModel relaxed_model(g, {});

    BufferConfig buf;
    buf.style = BufferStyle::Separate;
    buf.actBytes = 512 * 1024;
    buf.weightBytes = 288 * 1024;

    Partition p = Partition::fixedRuns(g, 4);
    Partition ps = repairToCapacity(g, p, strict_model, buf);
    Partition pr = repairToCapacity(g, p, relaxed_model, buf);
    GraphCost cs = strict_model.partitionCost(ps, buf);
    GraphCost cr = relaxed_model.partitionCost(pr, buf);
    if (cs.feasible && cr.feasible) {
        // Strict prefetch can only force more (or equal) splitting.
        EXPECT_GE(cs.subgraphs, cr.subgraphs);
        EXPECT_GE(cs.emaBytes, cr.emaBytes);
    }
}
