/**
 * @file
 * Tests for the exploration service (src/serve/): the NDJSON event
 * encoding, the JobManager's bit-identity and shared-cache contracts,
 * admission control, mid-flight cancellation, the batch directory
 * runner, and both protocol front ends (HTTP on an ephemeral port,
 * stdio NDJSON over FILE* pairs).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include <sys/stat.h>

#include "core/cocco.h"
#include "core/serialize.h"
#include "serve/batch.h"
#include "serve/events.h"
#include "serve/http_server.h"
#include "serve/job_manager.h"
#include "serve/service.h"
#include "util/json.h"
#include "util/logging.h"

using namespace cocco;

namespace {

/** A small real-model spec: fast enough for the sanitizer lane, real
 *  enough to exercise the whole resolve/explore path. */
std::string
gaSpecText(uint64_t seed, int64_t samples = 120)
{
    return strprintf("{\"algo\":\"ga\",\"model\":\"GoogleNet\","
                     "\"samples\":%lld,\"seed\":%llu,\"threads\":1,"
                     "\"ga\":{\"population\":20}}",
                     static_cast<long long>(samples),
                     static_cast<unsigned long long>(seed));
}

/** The reference document: the spec run solo, cold cache, exactly as
 *  `cocco run` would. */
std::string
soloResultDoc(const std::string &specText)
{
    SearchSpec spec;
    std::string err;
    EXPECT_TRUE(parseRunSpecText(specText, &spec, &err)) << err;
    spec.eval.cacheEnabled = false;
    Graph g;
    EXPECT_TRUE(resolveWorkload(spec.workload, &g, &err)) << err;
    AcceleratorConfig accel;
    EXPECT_TRUE(resolvePlatform(spec.platform, &accel, &err)) << err;
    CoccoResult r = CoccoFramework(g, accel).explore(spec);
    return resultToJson(g, r);
}

SearchSpec
parsedSpec(const std::string &text)
{
    SearchSpec spec;
    std::string err;
    EXPECT_TRUE(parseRunSpecText(text, &spec, &err)) << err;
    return spec;
}

/** Poll until @p id reaches Running (a submit is asynchronous). */
bool
waitRunning(JobManager &m, int64_t id, double timeoutSec = 10.0)
{
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::duration<double>(timeoutSec);
    while (std::chrono::steady_clock::now() < deadline) {
        JobState s = m.status(id).state;
        if (s == JobState::Running || jobStateTerminal(s))
            return s == JobState::Running;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return false;
}

void
writeFile(const std::string &path, const std::string &text)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr) << path;
    std::fputs(text.c_str(), f);
    std::fclose(f);
}

std::string
readFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return "";
    std::string out;
    char chunk[4096];
    size_t got;
    while ((got = std::fread(chunk, 1, sizeof(chunk), f)) > 0)
        out.append(chunk, got);
    std::fclose(f);
    return out;
}

} // namespace

// --- Event encoding ---------------------------------------------------------

TEST(Serve, EventEncodingGoldens)
{
    JobEvent e;
    e.kind = JobEvent::Kind::Accepted;
    e.job = 3;
    EXPECT_EQ(encodeJobEvent(e), "{\"event\":\"accepted\",\"job\":3}");

    e.kind = JobEvent::Kind::Improve;
    e.sample = 40;
    e.bestCost = 2.5;
    EXPECT_EQ(encodeJobEvent(e),
              "{\"event\":\"improve\",\"job\":3,\"sample\":40,"
              "\"best\":2.5}");

    e.kind = JobEvent::Kind::Checkpoint;
    EXPECT_EQ(encodeJobEvent(e),
              "{\"event\":\"checkpoint\",\"job\":3,\"sample\":40}");

    e.kind = JobEvent::Kind::Done;
    e.stop = StopReason::BudgetExhausted;
    EXPECT_EQ(encodeJobEvent(e),
              "{\"event\":\"done\",\"job\":3,\"sample\":40,"
              "\"best\":2.5,\"stop\":\"budget\"}");

    e.kind = JobEvent::Kind::Cancelled;
    e.stop = StopReason::Cancelled;
    EXPECT_EQ(encodeJobEvent(e),
              "{\"event\":\"cancelled\",\"job\":3,\"sample\":40,"
              "\"best\":2.5,\"stop\":\"cancelled\"}");

    e.kind = JobEvent::Kind::Failed;
    e.error = "no such model";
    EXPECT_EQ(encodeJobEvent(e),
              "{\"event\":\"failed\",\"job\":3,"
              "\"error\":\"no such model\"}");
}

// --- JobManager core --------------------------------------------------------

TEST(Serve, JobsAreBitIdenticalToSoloRunsAndShareTheCache)
{
    std::string text = gaSpecText(7);
    std::string expected = soloResultDoc(text);

    JobManagerOptions opts;
    opts.workers = 2;
    opts.threadBudget = 2;
    JobManager manager(opts);

    // The same spec twice plus a different seed: the repeat must hit
    // the shared cache, and nothing about sharing may leak into the
    // result documents.
    std::string err;
    int64_t a = manager.submit(parsedSpec(text), "t1", &err);
    ASSERT_GT(a, 0) << err;
    int64_t b = manager.submit(parsedSpec(text), "t2", &err);
    ASSERT_GT(b, 0) << err;
    int64_t c = manager.submit(parsedSpec(gaSpecText(8)), "t1", &err);
    ASSERT_GT(c, 0) << err;
    manager.drain();

    EXPECT_EQ(manager.status(a).state, JobState::Done);
    EXPECT_EQ(manager.status(b).state, JobState::Done);
    EXPECT_EQ(manager.status(c).state, JobState::Done);
    EXPECT_EQ(manager.resultJson(a), expected);
    EXPECT_EQ(manager.resultJson(b), expected);
    EXPECT_NE(manager.resultJson(c), expected); // different seed
    EXPECT_GT(manager.cacheStats().hits, 0u);

    // Status carries the tenant and the resolved model through.
    JobStatus s = manager.status(a);
    EXPECT_EQ(s.tenant, "t1");
    EXPECT_EQ(s.model, "GoogleNet");
    EXPECT_GE(s.threads, 1);
    EXPECT_EQ(s.progressSamples, 120);

    // The metrics document parses and carries the job block.
    JsonValue doc;
    std::string perr;
    ASSERT_TRUE(parseJson(manager.metricsJson(a), &doc, &perr)) << perr;
    const JsonValue *runs = doc.find("runs");
    ASSERT_NE(runs, nullptr);
    ASSERT_EQ(runs->array().size(), 1u);
    const JsonValue *job = runs->array()[0].find("job");
    ASSERT_NE(job, nullptr);
    EXPECT_EQ(job->find("id")->integer(), a);
    EXPECT_EQ(job->find("tenant")->str(), "t1");
    EXPECT_EQ(job->find("state")->str(), "done");

    // The event log tells the whole story in order.
    size_t cursor = 0;
    std::vector<JobEvent> events = manager.eventsSince(a, &cursor);
    ASSERT_GE(events.size(), 3u);
    EXPECT_EQ(events.front().kind, JobEvent::Kind::Accepted);
    EXPECT_EQ(events[1].kind, JobEvent::Kind::Started);
    EXPECT_EQ(events.back().kind, JobEvent::Kind::Done);
    // The cursor advanced past everything: nothing new.
    EXPECT_TRUE(manager.eventsSince(a, &cursor).empty());
}

TEST(Serve, CancelStopsAJobMidFlight)
{
    JobManagerOptions opts;
    opts.workers = 1;
    opts.threadBudget = 1;
    JobManager manager(opts);

    // A budget far too large to finish; cancellation must end it.
    std::string err;
    int64_t id = manager.submit(parsedSpec(gaSpecText(1, 50000000)),
                                "t", &err);
    ASSERT_GT(id, 0) << err;
    ASSERT_TRUE(waitRunning(manager, id));

    // Let it make some progress before pulling the plug.
    size_t cursor = 0;
    manager.eventsSince(id, &cursor, 5.0);
    EXPECT_TRUE(manager.cancel(id));
    ASSERT_TRUE(manager.wait(id, 30.0));
    JobStatus s = manager.status(id);
    EXPECT_EQ(s.state, JobState::Cancelled);
    EXPECT_LT(s.progressSamples, 50000000);

    // Cancelling a terminal job is a no-op that reports false.
    EXPECT_FALSE(manager.cancel(id));
    EXPECT_FALSE(manager.cancel(999));
}

TEST(Serve, AdmissionControlShedsAtTheFrontDoor)
{
    JobManagerOptions opts;
    opts.workers = 1;
    opts.threadBudget = 1;
    opts.queueCapacity = 1;
    JobManager manager(opts);

    std::string err;

    // Structurally unrunnable specs never reach the queue.
    SearchSpec bad = parsedSpec(gaSpecText(1));
    bad.algo = "no-such-algo";
    EXPECT_EQ(manager.submit(bad, "t", &err), -1);
    EXPECT_FALSE(err.empty());

    bad = parsedSpec(gaSpecText(1));
    bad.ga.population = 1;
    EXPECT_EQ(manager.submit(bad, "t", &err), -1);

    bad = parsedSpec(gaSpecText(1));
    bad.eval.sampleBudget = 0;
    EXPECT_EQ(manager.submit(bad, "t", &err), -1);

    // A duplicate racer would hit the portfolio searcher's own
    // fatal() on a worker thread — shed it at the front door too.
    bad = parsedSpec(gaSpecText(1));
    bad.algo = "portfolio";
    bad.portfolio.racers = {"ga", "sa", "ga"};
    err.clear();
    EXPECT_EQ(manager.submit(bad, "t", &err), -1);
    EXPECT_NE(err.find("duplicate"), std::string::npos) << err;

    // Occupy the one worker, fill the one queue slot; the next
    // submission must be rejected as over-capacity.
    int64_t running = manager.submit(parsedSpec(gaSpecText(2, 50000000)),
                                     "t", &err);
    ASSERT_GT(running, 0) << err;
    ASSERT_TRUE(waitRunning(manager, running));
    int64_t queued = manager.submit(parsedSpec(gaSpecText(3)), "t", &err);
    ASSERT_GT(queued, 0) << err;
    err.clear();
    EXPECT_EQ(manager.submit(parsedSpec(gaSpecText(4)), "t", &err), -1);
    EXPECT_NE(err.find("full"), std::string::npos) << err;

    // cancelAll reaps both the running and the queued job.
    manager.cancelAll();
    manager.drain();
    EXPECT_EQ(manager.status(running).state, JobState::Cancelled);
    EXPECT_EQ(manager.status(queued).state, JobState::Cancelled);
}

// --- Batch directory runner -------------------------------------------------

TEST(Serve, BatchDrainsADirectoryAndRecordsFailures)
{
    std::string expected = soloResultDoc(gaSpecText(5));

    char tmpl[] = "/tmp/cocco_batch_test_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    std::string dir = tmpl;
    writeFile(dir + "/a.json", gaSpecText(5));
    writeFile(dir + "/b.json", gaSpecText(6));
    writeFile(dir + "/broken.json", "{\"algo\":\"no-such-algo\"}");

    BatchOptions opts;
    opts.jobs = 2;
    opts.threadBudget = 2;
    BatchSummary summary;
    std::string err;
    ASSERT_TRUE(runBatchDir(dir, opts, &summary, &err)) << err;
    EXPECT_EQ(summary.done, 2);
    EXPECT_EQ(summary.failed, 1);
    EXPECT_EQ(summary.cancelled, 0);
    EXPECT_FALSE(summary.interrupted);
    ASSERT_EQ(summary.entries.size(), 3u);

    // Outputs land next to the specs; the result doc is the solo doc
    // (the file form adds the trailing newline every writer does).
    EXPECT_EQ(readFile(dir + "/a.result.json"), expected + "\n");
    EXPECT_FALSE(readFile(dir + "/a.metrics.json").empty());
    EXPECT_FALSE(readFile(dir + "/b.result.json").empty());

    JsonValue doc;
    std::string perr;
    ASSERT_TRUE(parseJson(readFile(dir + "/batch_summary.json"), &doc,
                          &perr))
        << perr;
    EXPECT_EQ(doc.find("done")->integer(), 2);
    EXPECT_EQ(doc.find("failed")->integer(), 1);
    ASSERT_NE(doc.find("jobs"), nullptr);
    EXPECT_EQ(doc.find("jobs")->array().size(), 3u);

    // Aggregate accounting: the batch's own wall clock, the summed
    // per-job wall clock / sample counts, and the shared cache's
    // lifetime hit rate, all in the summary document.
    ASSERT_NE(doc.find("wall_seconds"), nullptr);
    EXPECT_GT(doc.find("wall_seconds")->number(), 0.0);
    ASSERT_NE(doc.find("jobs_wall_seconds"), nullptr);
    EXPECT_GT(doc.find("jobs_wall_seconds")->number(), 0.0);
    EXPECT_DOUBLE_EQ(doc.find("jobs_wall_seconds")->number(),
                     summary.jobsWallSeconds);
    ASSERT_NE(doc.find("samples_total"), nullptr);
    EXPECT_EQ(doc.find("samples_total")->integer(),
              summary.samplesTotal);
    EXPECT_GE(summary.samplesTotal, 2 * 120);
    const JsonValue *scache = doc.find("cache");
    ASSERT_NE(scache, nullptr);
    ASSERT_NE(scache->find("hit_rate"), nullptr);
    EXPECT_GE(scache->find("hit_rate")->number(), 0.0);
    EXPECT_LE(scache->find("hit_rate")->number(), 1.0);

    // An interrupted batch cancels cooperatively and says so.
    char tmpl2[] = "/tmp/cocco_batch_test_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl2), nullptr);
    std::string dir2 = tmpl2;
    writeFile(dir2 + "/slow.json", gaSpecText(1, 50000000));
    std::atomic<bool> interrupt{false};
    BatchOptions iopts;
    iopts.jobs = 1;
    iopts.threadBudget = 1;
    iopts.interrupt = &interrupt;
    std::thread trip([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(300));
        interrupt.store(true);
    });
    BatchSummary isummary;
    ASSERT_TRUE(runBatchDir(dir2, iopts, &isummary, &err)) << err;
    trip.join();
    EXPECT_TRUE(isummary.interrupted);
    EXPECT_EQ(isummary.cancelled, 1);

    // An empty directory is an error, not an empty success.
    char tmpl3[] = "/tmp/cocco_batch_test_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl3), nullptr);
    err.clear();
    BatchSummary esummary;
    EXPECT_FALSE(runBatchDir(tmpl3, iopts, &esummary, &err));
    EXPECT_FALSE(err.empty());
}

// --- Co-scheduled workload_set jobs -----------------------------------------

TEST(Serve, CoScheduleJobsRunThroughTheManager)
{
    const char *specText = R"({
        "algo": "ga", "samples": 300, "seed": 7, "threads": 1,
        "ga": {"population": 12},
        "deployment": "big-little",
        "workload_set": [
            {"name": "vision", "model": "GoogleNet",
             "arrival_rate_hz": 40, "sla_latency_ms": 18},
            {"name": "mobile", "model": "MobileNetV2",
             "arrival_rate_hz": 25, "sla_latency_ms": 30}
        ]
    })";

    JobManagerOptions opts;
    opts.workers = 1;
    opts.threadBudget = 1;
    JobManager manager(opts);

    std::string err;
    int64_t id = manager.submit(parsedSpec(specText), "tenant-a", &err);
    ASSERT_GT(id, 0) << err;
    ASSERT_TRUE(manager.wait(id, 60.0));
    EXPECT_EQ(manager.status(id).state, JobState::Done);
    EXPECT_EQ(manager.status(id).name, "ga:vision+mobile");
    EXPECT_EQ(manager.status(id).model, "GoogleNet+MobileNetV2");

    // The result document is the co-schedule analogue of resultToJson:
    // per-tenant placements plus the schedule-level cost.
    std::string result = manager.resultJson(id);
    ASSERT_FALSE(result.empty());
    JsonValue doc;
    ASSERT_TRUE(parseJson(result, &doc, &err)) << err;
    ASSERT_NE(doc.find("tenants"), nullptr);
    EXPECT_EQ(doc.find("tenants")->array().size(), 2u);
    ASSERT_NE(doc.find("cost"), nullptr);
    ASSERT_NE(doc.find("cost")->find("sla_violations"), nullptr);

    // The metrics document replaces the deployment block with the
    // tenants block and keeps the serving context.
    std::string metrics = manager.metricsJson(id);
    ASSERT_FALSE(metrics.empty());
    ASSERT_TRUE(parseJson(metrics, &doc, &err)) << err;
    const JsonValue &run = doc.find("runs")->array()[0];
    EXPECT_EQ(run.find("deployment"), nullptr);
    const JsonValue *tenants = run.find("tenants");
    ASSERT_NE(tenants, nullptr);
    EXPECT_EQ(tenants->find("count")->integer(), 2);
    EXPECT_EQ(tenants->find("list")->array().size(), 2u);
    ASSERT_NE(run.find("job"), nullptr);

    // Admission validates the set itself: a duplicate tenant name is
    // shed at the front door, before it can reach a worker.
    SearchSpec bad = parsedSpec(specText);
    bad.workloadSet.tenants[1].name =
        bad.workloadSet.tenants[0].name;
    err.clear();
    EXPECT_EQ(manager.submit(bad, "tenant-a", &err), -1);
    EXPECT_NE(err.find("duplicate"), std::string::npos) << err;
}

// --- HTTP front end ---------------------------------------------------------

TEST(Serve, HttpRoundTrip)
{
    std::string text = gaSpecText(9);
    std::string expected = soloResultDoc(text);

    JobManagerOptions opts;
    opts.workers = 2;
    opts.threadBudget = 2;
    JobManager manager(opts);
    std::atomic<bool> shutdownFlag{false};
    HttpServer server([&](const HttpRequest &req) {
        return serveHttpRequest(manager, req, &shutdownFlag);
    });
    std::string err;
    ASSERT_TRUE(server.start(0, &err)) << err;
    int port = server.port();

    int status = 0;
    std::string body;
    ASSERT_TRUE(httpFetch("127.0.0.1", port, "GET", "/healthz", "",
                          &status, &body, &err))
        << err;
    EXPECT_EQ(status, 200);
    EXPECT_NE(body.find("\"status\":\"ok\""), std::string::npos) << body;

    // Submit, poll /result until it flips from 409 to 200.
    ASSERT_TRUE(httpFetch("127.0.0.1", port, "POST", "/jobs", text,
                          &status, &body, &err))
        << err;
    ASSERT_EQ(status, 202) << body;
    JsonValue doc;
    std::string perr;
    ASSERT_TRUE(parseJson(body, &doc, &perr)) << perr;
    int64_t id = doc.find("job")->integer();
    ASSERT_GT(id, 0);

    ASSERT_TRUE(manager.wait(id, 60.0));
    ASSERT_TRUE(httpFetch("127.0.0.1", port, "GET",
                          strprintf("/jobs/%lld/result",
                                    static_cast<long long>(id)),
                          "", &status, &body, &err))
        << err;
    EXPECT_EQ(status, 200);
    EXPECT_EQ(body, expected);

    // Status endpoints.
    ASSERT_TRUE(httpFetch("127.0.0.1", port, "GET",
                          strprintf("/jobs/%lld",
                                    static_cast<long long>(id)),
                          "", &status, &body, &err));
    EXPECT_EQ(status, 200);
    EXPECT_NE(body.find("\"state\":\"done\""), std::string::npos) << body;
    ASSERT_TRUE(httpFetch("127.0.0.1", port, "GET", "/jobs/999", "",
                          &status, &body, &err));
    EXPECT_EQ(status, 404);

    // A result for a still-missing job is 409 while non-terminal —
    // here exercised via an unparseable submission instead: 400.
    ASSERT_TRUE(httpFetch("127.0.0.1", port, "POST", "/jobs",
                          "this is not json", &status, &body, &err));
    EXPECT_EQ(status, 400);

    // The event stream replays the job's history and terminates.
    ASSERT_TRUE(httpFetch("127.0.0.1", port, "GET",
                          strprintf("/jobs/%lld/events",
                                    static_cast<long long>(id)),
                          "", &status, &body, &err));
    EXPECT_EQ(status, 200);
    EXPECT_NE(body.find("\"event\":\"accepted\""), std::string::npos);
    EXPECT_NE(body.find("\"event\":\"done\""), std::string::npos);

    // Remote shutdown flips the serve loop's flag.
    ASSERT_TRUE(httpFetch("127.0.0.1", port, "POST", "/shutdown", "",
                          &status, &body, &err));
    EXPECT_EQ(status, 200);
    EXPECT_TRUE(shutdownFlag.load());
    server.stop();
}

// --- Stdio front end --------------------------------------------------------

TEST(Serve, StdioProtocolRoundTrip)
{
    std::string text = gaSpecText(11);
    std::string expected = soloResultDoc(text);

    std::string input;
    input += "{\"cmd\":\"submit\",\"tenant\":\"cli\",\"spec\":" + text +
             "}\n";
    input += "{\"cmd\":\"wait\",\"job\":1}\n";
    input += "{\"cmd\":\"status\",\"job\":1}\n";
    input += "{\"cmd\":\"result\",\"job\":1}\n";
    input += "{\"cmd\":\"nonsense\"}\n";
    input += "{\"cmd\":\"shutdown\"}\n";

    std::FILE *in = ::fmemopen(const_cast<char *>(input.data()),
                               input.size(), "r");
    ASSERT_NE(in, nullptr);
    std::FILE *out = std::tmpfile();
    ASSERT_NE(out, nullptr);

    JobManagerOptions opts;
    opts.workers = 1;
    opts.threadBudget = 1;
    JobManager manager(opts);
    EXPECT_EQ(runStdioServe(manager, in, out), 0);
    std::fclose(in);

    std::fseek(out, 0, SEEK_SET);
    std::vector<std::string> lines;
    char buf[1 << 16];
    while (std::fgets(buf, sizeof(buf), out))
        lines.emplace_back(buf);
    std::fclose(out);

    ASSERT_GE(lines.size(), 5u);
    EXPECT_NE(lines[0].find("\"ok\":true"), std::string::npos)
        << lines[0];
    EXPECT_NE(lines[0].find("\"job\":1"), std::string::npos);
    EXPECT_NE(lines[2].find("\"state\":\"done\""), std::string::npos)
        << lines[2];
    // The result line embeds the solo document verbatim.
    EXPECT_NE(lines[3].find(expected), std::string::npos);
    // Unknown commands answer ok:false with an error, not silence.
    bool sawError = false;
    for (const std::string &l : lines)
        sawError = sawError || l.find("\"ok\":false") != std::string::npos;
    EXPECT_TRUE(sawError);
}
