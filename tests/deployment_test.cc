/**
 * @file
 * Tests for the deployment subsystem (sim/deployment.h): the crossbar
 * model invariants (single core is exactly zero-cost, crossbar terms
 * scale monotonically with core count), bit-identity of homogeneous
 * deployments with the plain multi-core accelerator, heterogeneous
 * composition, content-hash fencing, the registry/JSON frontends, the
 * spec-level integration, per-core timeline lanes, and determinism of
 * deployment exploration across thread counts.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/cocco.h"
#include "core/metrics.h"
#include "core/serialize.h"
#include "models/models.h"
#include "sim/deployment.h"
#include "sim/multicore.h"
#include "sim/timeline.h"
#include "util/hash.h"
#include "util/json.h"

using namespace cocco;

namespace {

Layer
mkLayer(const char *name, LayerKind kind, int h, int w, int c, int k = 1,
        int s = 1)
{
    Layer l;
    l.name = name;
    l.kind = kind;
    l.outH = h;
    l.outW = w;
    l.outC = c;
    l.kernel = k;
    l.stride = s;
    return l;
}

/** input(32x32x8) -> four 3x3 convs in a chain. */
Graph
chain()
{
    Graph g("chain");
    g.addNode(mkLayer("in", LayerKind::Input, 32, 32, 8));
    g.addNode(mkLayer("a", LayerKind::Conv, 32, 32, 16, 3, 1), {0});
    g.addNode(mkLayer("b", LayerKind::Conv, 32, 32, 16, 3, 1), {1});
    g.addNode(mkLayer("c", LayerKind::Conv, 16, 16, 32, 3, 2), {2});
    g.addNode(mkLayer("d", LayerKind::Conv, 16, 16, 32, 3, 1), {3});
    return g;
}

BufferConfig
roomyShared()
{
    BufferConfig c;
    c.style = BufferStyle::Shared;
    c.sharedBytes = 2 * 1024 * 1024;
    return c;
}

/** A CI-sized co-exploration spec. */
SearchSpec
fastSpec(int64_t budget = 400)
{
    SearchSpec spec;
    spec.algo = "ga";
    spec.eval.sampleBudget = budget;
    spec.eval.seed = 7;
    spec.ga.population = 20;
    spec.style = BufferStyle::Shared;
    return spec;
}

/** Strict result equality: the contract is bit-identical. */
void
expectIdentical(const CoccoResult &a, const CoccoResult &b)
{
    EXPECT_EQ(a.objective, b.objective);
    EXPECT_EQ(a.samples, b.samples);
    EXPECT_EQ(a.buffer.totalBytes(), b.buffer.totalBytes());
    EXPECT_EQ(a.partition.block, b.partition.block);
    EXPECT_EQ(a.cost.energyPj, b.cost.energyPj);
    EXPECT_EQ(a.cost.latencyCycles, b.cost.latencyCycles);
    ASSERT_EQ(a.trace.size(), b.trace.size());
    for (size_t i = 0; i < a.trace.size(); ++i) {
        EXPECT_EQ(a.trace[i].sample, b.trace[i].sample);
        EXPECT_EQ(a.trace[i].bestCost, b.trace[i].bestCost);
    }
}

} // namespace

// --- Fold / defaults ---------------------------------------------------------

TEST(Deployment, UnsetInterconnectInheritsThePlatformCrossbar)
{
    // A deployment that never mentions the interconnect must model
    // exactly the core platform's built-in crossbar — including a
    // platform that customized those values — or single-core
    // bit-identity (and Table 3 continuity) would silently break.
    AcceleratorConfig a;
    InterconnectConfig inherited =
        resolveInterconnect(InterconnectConfig{}, a);
    EXPECT_EQ(inherited.bytesPerCycle, a.crossbarBytesPerCycle);
    EXPECT_EQ(inherited.pjPerByteHop, a.energy.crossbarPjPerByte);

    AcceleratorConfig custom;
    custom.crossbarBytesPerCycle = 64.0;
    custom.energy.crossbarPjPerByte = 10.0;
    InterconnectConfig from_custom =
        resolveInterconnect(InterconnectConfig{}, custom);
    EXPECT_EQ(from_custom.bytesPerCycle, 64.0);
    EXPECT_EQ(from_custom.pjPerByteHop, 10.0);

    // Explicit knobs win over inheritance.
    InterconnectConfig half_set;
    half_set.bytesPerCycle = 128.0;
    InterconnectConfig mixed = resolveInterconnect(half_set, custom);
    EXPECT_EQ(mixed.bytesPerCycle, 128.0);
    EXPECT_EQ(mixed.pjPerByteHop, 10.0);
}

TEST(Deployment, FoldMatchesDirectMulticoreConfig)
{
    AcceleratorConfig direct; // the paper platform, scaled by hand
    direct.cores = 4;

    DeploymentConfig dep =
        homogeneousDeployment(AcceleratorConfig{}, 4);
    EXPECT_TRUE(dep.homogeneous());
    AcceleratorConfig folded = foldDeployment(dep.coreConfigs[0], dep);
    EXPECT_EQ(hashFinalize(hashAccelerator(kHashSeed, folded)),
              hashFinalize(hashAccelerator(kHashSeed, direct)));
}

// --- Crossbar invariants -----------------------------------------------------

TEST(Deployment, SingleCoreIsExactlyZeroCost)
{
    Graph g = chain();
    CostModel plain(g, AcceleratorConfig{});
    DeploymentCostModel single(
        g, homogeneousDeployment(AcceleratorConfig{}, 1));

    Partition p = Partition::fixedRuns(g, 2);
    p.canonicalize(g);
    BufferConfig buf = roomyShared();

    GraphCost a = plain.partitionCost(p, buf);
    GraphCost b = single.partitionCost(p, buf);
    EXPECT_EQ(a.emaBytes, b.emaBytes);
    EXPECT_EQ(a.energyPj, b.energyPj);
    EXPECT_EQ(a.latencyCycles, b.latencyCycles);

    // And the crossbar terms themselves vanish.
    DeploymentBreakdown bd = single.breakdown(p, buf);
    EXPECT_EQ(bd.cores, 1);
    EXPECT_EQ(bd.crossbarEnergyPj, 0.0);
    EXPECT_EQ(bd.crossbarCycles, 0.0);
}

TEST(Deployment, HomogeneousMatchesPlainMulticoreBitwise)
{
    Graph g = chain();
    Partition p = Partition::fixedRuns(g, 2);
    p.canonicalize(g);
    BufferConfig buf = roomyShared();

    for (int cores : {2, 4}) {
        AcceleratorConfig direct;
        direct.cores = cores;
        CostModel plain(g, direct);
        DeploymentCostModel dep(
            g, homogeneousDeployment(AcceleratorConfig{}, cores));

        GraphCost a = plain.partitionCost(p, buf);
        GraphCost b = dep.partitionCost(p, buf);
        EXPECT_EQ(a.emaBytes, b.emaBytes);
        EXPECT_EQ(a.energyPj, b.energyPj);
        EXPECT_EQ(a.latencyCycles, b.latencyCycles);
        EXPECT_EQ(plain.contextHash(kHashSeed),
                  dep.contextHash(kHashSeed));
    }

    // A platform with a customized built-in crossbar keeps it when
    // deployed without an explicit interconnect (regression: the
    // interconnect must inherit, not reset to the struct defaults).
    AcceleratorConfig custom;
    custom.crossbarBytesPerCycle = 64.0;
    custom.energy.crossbarPjPerByte = 10.0;
    AcceleratorConfig custom_direct = custom;
    custom_direct.cores = 2;
    CostModel plain(g, custom_direct);
    DeploymentCostModel dep(g, homogeneousDeployment(custom, 2));
    EXPECT_EQ(plain.partitionCost(p, buf).energyPj,
              dep.partitionCost(p, buf).energyPj);
    EXPECT_EQ(plain.partitionCost(p, buf).latencyCycles,
              dep.partitionCost(p, buf).latencyCycles);
    EXPECT_EQ(plain.contextHash(kHashSeed), dep.contextHash(kHashSeed));
}

TEST(Deployment, CrossbarTermsScaleMonotonicallyWithCores)
{
    Graph g = chain();
    Partition p = Partition::fixedRuns(g, 2);
    p.canonicalize(g);
    BufferConfig buf = roomyShared();

    double prev_energy = -1.0, prev_cycles = -1.0;
    for (int cores : {1, 2, 4, 8}) {
        DeploymentCostModel m(
            g, homogeneousDeployment(AcceleratorConfig{}, cores));
        DeploymentBreakdown b = m.breakdown(p, buf);
        if (cores == 1) {
            EXPECT_EQ(b.crossbarEnergyPj, 0.0);
            EXPECT_EQ(b.crossbarCycles, 0.0);
        } else {
            EXPECT_GT(b.crossbarEnergyPj, prev_energy);
            EXPECT_GT(b.crossbarCycles, prev_cycles);
        }
        prev_energy = b.crossbarEnergyPj;
        prev_cycles = b.crossbarCycles;

        // The raw per-subgraph terms agree with the aggregate view.
        for (const auto &blk : p.blocks()) {
            const SubgraphProfile &prof = m.profile(blk);
            if (cores == 1)
                EXPECT_EQ(crossbarBytes(prof, m.accel()), 0);
            else
                EXPECT_GT(crossbarBytes(prof, m.accel()), 0);
        }
    }
}

// --- Explore-level bit-identity ---------------------------------------------

TEST(Deployment, SingleCoreExploreBitIdenticalToPlainExplore)
{
    // The acceptance contract: "deployment": {"cores": 1} produces a
    // bit-identical CoccoResult to the same spec with no deployment.
    Graph g = chain();
    SearchSpec spec = fastSpec();

    CoccoFramework plain(g, AcceleratorConfig{});
    CoccoResult a = plain.explore(spec);

    CoccoFramework deployed(
        g, homogeneousDeployment(AcceleratorConfig{}, 1));
    CoccoResult b = deployed.explore(spec);

    expectIdentical(a, b);
}

TEST(Deployment, ExploreDeterministicAcrossThreadCounts)
{
    Graph g = chain();
    DeploymentConfig dep =
        homogeneousDeployment(AcceleratorConfig{}, 4);

    SearchSpec one = fastSpec();
    one.eval.threads = 1;
    CoccoFramework f1(g, dep);
    CoccoResult a = f1.explore(one);

    SearchSpec four = fastSpec();
    four.eval.threads = 4;
    CoccoFramework f4(g, dep);
    CoccoResult b = f4.explore(four);

    expectIdentical(a, b);
}

// --- Heterogeneous composition ----------------------------------------------

namespace {

/** 2x simba + 2x edge behind the default crossbar. */
DeploymentConfig
bigLittle()
{
    AcceleratorConfig simba;
    AcceleratorConfig edge = platformPreset("edge");
    DeploymentConfig dep;
    dep.coreConfigs = {simba, simba, edge, edge};
    return dep;
}

} // namespace

TEST(Deployment, HeterogeneousComposition)
{
    Graph g = chain();
    Partition p = Partition::fixedRuns(g, 2);
    p.canonicalize(g);
    BufferConfig buf = roomyShared();

    DeploymentCostModel mixed(g, bigLittle());
    DeploymentCostModel quad(
        g, homogeneousDeployment(AcceleratorConfig{}, 4));

    GraphCost cm = mixed.partitionCost(p, buf);
    GraphCost cq = quad.partitionCost(p, buf);
    ASSERT_TRUE(cm.feasible);
    ASSERT_TRUE(cq.feasible);

    // The edge cores share simba's energy model, so the energy
    // average equals the homogeneous value exactly; the slower edge
    // cores and the thinner aggregate DRAM make latency worse.
    EXPECT_DOUBLE_EQ(cm.energyPj, cq.energyPj);
    EXPECT_GT(cm.latencyCycles, cq.latencyCycles);
    EXPECT_EQ(cm.emaBytes, cq.emaBytes);

    // Per-core utilization: the little cores run at a lower clock
    // with fewer PEs, so they are busier over the shared window.
    DeploymentBreakdown b = mixed.breakdown(p, buf);
    ASSERT_EQ(b.cores, 4);
    ASSERT_EQ(b.coreUtilization.size(), 4u);
    EXPECT_DOUBLE_EQ(b.coreUtilization[0], b.coreUtilization[1]);
    EXPECT_DOUBLE_EQ(b.coreUtilization[2], b.coreUtilization[3]);
    EXPECT_GT(b.coreUtilization[2], b.coreUtilization[0]);

    // Per-window core lanes mirror the asymmetry.
    std::vector<double> lanes =
        mixed.coreComputeCycles(p.blocks().front());
    ASSERT_EQ(lanes.size(), 4u);
    EXPECT_GT(lanes[2], lanes[0]);
}

TEST(Deployment, ContextHashFencesDeployments)
{
    Graph g = chain();
    DeploymentCostModel quad(
        g, homogeneousDeployment(AcceleratorConfig{}, 4));
    DeploymentCostModel mixed(g, bigLittle());
    DeploymentConfig reversed = bigLittle();
    std::reverse(reversed.coreConfigs.begin(),
                 reversed.coreConfigs.end());
    DeploymentCostModel mixed_rev(g, reversed);

    uint64_t hq = quad.contextHash(kHashSeed);
    uint64_t hm = mixed.contextHash(kHashSeed);
    uint64_t hr = mixed_rev.contextHash(kHashSeed);
    EXPECT_NE(hq, hm);
    EXPECT_NE(hm, hr); // core order changes the clock domain

    // Different interconnects fence too.
    DeploymentConfig slow = homogeneousDeployment(AcceleratorConfig{}, 4);
    slow.interconnect.bytesPerCycle = 64.0;
    DeploymentCostModel slow_model(g, slow);
    EXPECT_NE(slow_model.contextHash(kHashSeed), hq);
}

// --- Registry / JSON ---------------------------------------------------------

TEST(Deployment, BuiltinPresetsRegistered)
{
    const DeploymentRegistry &reg = DeploymentRegistry::instance();
    std::vector<std::string> keys = reg.keys();
    ASSERT_GE(keys.size(), 4u);
    for (const char *name : {"single", "dual", "quad", "big-little"}) {
        EXPECT_TRUE(reg.contains(name));
        EXPECT_FALSE(reg.summary(name).empty());
    }
    EXPECT_EQ(deploymentPreset("single").cores, 1);
    EXPECT_EQ(deploymentPreset("dual").cores, 2);
    EXPECT_EQ(deploymentPreset("quad").cores, 4);
    DeploymentDesc bl = deploymentPreset("big-little");
    EXPECT_EQ(bl.cores, 4);
    ASSERT_EQ(bl.corePlatforms.size(), 4u);
    EXPECT_EQ(bl.corePlatforms[3].preset, "edge");
}

TEST(Deployment, JsonRoundTrip)
{
    DeploymentDesc bl = deploymentPreset("big-little");
    bl.interconnect.bytesPerCycle = 128.0;
    std::string json = deploymentToJson(bl);

    JsonValue doc;
    std::string err;
    ASSERT_TRUE(parseJson(json, &doc, &err)) << err;
    DeploymentDesc back;
    ASSERT_TRUE(deploymentFromJson(doc, &back, &err)) << err;
    EXPECT_EQ(back.cores, bl.cores);
    EXPECT_EQ(back.interconnect.bytesPerCycle, 128.0);
    ASSERT_EQ(back.corePlatforms.size(), 4u);
    EXPECT_EQ(back.corePlatforms[0].preset, "simba");
    EXPECT_EQ(back.corePlatforms[2].preset, "edge");
}

TEST(Deployment, JsonRejectsMalformedDocuments)
{
    auto reject = [](const char *text, const char *needle) {
        JsonValue doc;
        std::string err;
        ASSERT_TRUE(parseJson(text, &doc, &err)) << err;
        DeploymentDesc desc;
        EXPECT_FALSE(deploymentFromJson(doc, &desc, &err)) << text;
        EXPECT_NE(err.find(needle), std::string::npos)
            << text << " -> " << err;
    };
    reject("{\"cores\": 0}", "cores");
    reject("{\"banana\": 1}", "unknown deployment key");
    reject("{\"cores\": 2, \"corePlatforms\": [\"simba\"]}",
           "disagrees");
    reject("{\"interconnect\": {\"bytesPerCycle\": -1.0}}",
           "bytesPerCycle");
    reject("{\"interconnect\": {\"pjPerByteHop\": -0.5}}",
           "pjPerByteHop");
    reject("{\"base\": \"no-such-deployment\"}", "unknown deployment");
}

TEST(Deployment, SpecFormsParse)
{
    // Preset-string form.
    JsonValue doc;
    std::string err;
    ASSERT_TRUE(parseJson("{\"model\": \"VGG-16\", \"deployment\": "
                          "\"quad\"}",
                          &doc, &err))
        << err;
    SearchSpec spec;
    ASSERT_TRUE(searchSpecFromJson(doc, &spec, &err)) << err;
    EXPECT_TRUE(spec.deployment.enabled);
    EXPECT_EQ(spec.deployment.preset, "quad");

    // Inline form with heterogeneous cores.
    ASSERT_TRUE(parseJson(
        "{\"model\": \"VGG-16\", \"deployment\": {\"corePlatforms\": "
        "[\"simba\", {\"base\": \"simba\", \"peRows\": 2}]}}",
        &doc, &err))
        << err;
    SearchSpec inl;
    ASSERT_TRUE(searchSpecFromJson(doc, &inl, &err)) << err;
    EXPECT_TRUE(inl.deployment.enabled);
    ASSERT_TRUE(inl.deployment.inlineDesc);
    EXPECT_EQ(inl.deployment.desc.cores, 2);
    EXPECT_TRUE(inl.deployment.desc.corePlatforms[1].inlineConfig);

    // No section at all: disabled.
    ASSERT_TRUE(parseJson("{\"model\": \"VGG-16\"}", &doc, &err)) << err;
    SearchSpec off;
    ASSERT_TRUE(searchSpecFromJson(doc, &off, &err)) << err;
    EXPECT_FALSE(off.deployment.enabled);

    // A bad section is a clean error.
    ASSERT_TRUE(parseJson("{\"model\": \"VGG-16\", \"deployment\": "
                          "{\"cores\": -3}}",
                          &doc, &err))
        << err;
    SearchSpec bad;
    EXPECT_FALSE(searchSpecFromJson(doc, &bad, &err));
}

TEST(Deployment, ResolveDeployment)
{
    AcceleratorConfig base; // simba

    // Disabled: the trivial one-core deployment of the base.
    DeploymentSpec off;
    DeploymentConfig dep;
    std::string err;
    ASSERT_TRUE(resolveDeployment(off, base, &dep, &err)) << err;
    EXPECT_EQ(dep.cores(), 1);

    // Preset without explicit platforms: cores x base.
    DeploymentSpec quad;
    quad.enabled = true;
    quad.preset = "quad";
    ASSERT_TRUE(resolveDeployment(quad, base, &dep, &err)) << err;
    EXPECT_EQ(dep.cores(), 4);
    EXPECT_TRUE(dep.homogeneous());

    // Heterogeneous preset resolves its own platforms.
    DeploymentSpec bl;
    bl.enabled = true;
    bl.preset = "big-little";
    ASSERT_TRUE(resolveDeployment(bl, base, &dep, &err)) << err;
    EXPECT_EQ(dep.cores(), 4);
    EXPECT_FALSE(dep.homogeneous());

    // A multi-core base platform cannot be scaled out again.
    AcceleratorConfig x4 = platformPreset("simba-x4");
    EXPECT_FALSE(resolveDeployment(quad, x4, &dep, &err));
    EXPECT_NE(err.find("multi-core"), std::string::npos);

    // Several sources at once is an error.
    DeploymentSpec multi;
    multi.enabled = true;
    multi.preset = "quad";
    multi.file = "nonexistent.json";
    err.clear();
    EXPECT_FALSE(resolveDeployment(multi, base, &dep, &err));

    // Unknown preset is a clean error, not a crash.
    DeploymentSpec unknown;
    unknown.enabled = true;
    unknown.preset = "no-such";
    err.clear();
    EXPECT_FALSE(resolveDeployment(unknown, base, &dep, &err));
    EXPECT_NE(err.find("unknown deployment"), std::string::npos);
}

// --- Timeline lanes ----------------------------------------------------------

TEST(Deployment, TimelineRendersPerCoreLanes)
{
    Graph g = chain();
    Partition p = Partition::fixedRuns(g, 2);
    p.canonicalize(g);
    BufferConfig buf = roomyShared();

    // Single core: no lanes, rendering unchanged.
    CostModel plain(g, AcceleratorConfig{});
    Timeline tl1 = buildTimeline(plain, p, buf);
    EXPECT_EQ(tl1.cores, 1);
    for (const TimelineEntry &e : tl1.entries)
        EXPECT_TRUE(e.coreBusyCycles.empty());
    EXPECT_EQ(tl1.gantt(40).find(" c0"), std::string::npos);

    // Deployment: one lane per core.
    DeploymentCostModel dep(g, bigLittle());
    Timeline tl4 = buildTimeline(dep, p, buf);
    EXPECT_EQ(tl4.cores, 4);
    for (const TimelineEntry &e : tl4.entries)
        EXPECT_EQ(e.coreBusyCycles.size(), 4u);
    std::string gantt = tl4.gantt(40);
    EXPECT_NE(gantt.find(" c0"), std::string::npos);
    EXPECT_NE(gantt.find(" c3"), std::string::npos);
    EXPECT_NE(gantt.find("per-core busy"), std::string::npos);
}

// --- Result / metrics plumbing ----------------------------------------------

TEST(Deployment, ResultCarriesBreakdownAndMetricsEmitIt)
{
    Graph g = chain();
    CoccoFramework cocco(g,
                         homogeneousDeployment(AcceleratorConfig{}, 2));
    CoccoResult r = cocco.explore(fastSpec(200));
    EXPECT_EQ(r.deployment.cores, 2);
    ASSERT_EQ(r.deployment.coreUtilization.size(), 2u);
    EXPECT_GT(r.deployment.crossbarEnergyPj, 0.0);
    EXPECT_GT(r.deployment.crossbarEnergyShare, 0.0);
    EXPECT_LT(r.deployment.crossbarEnergyShare, 1.0);

    // resultToJson exposes the block.
    std::string json = resultToJson(g, r);
    EXPECT_NE(json.find("\"deployment\":{"), std::string::npos);
    EXPECT_NE(json.find("\"core_utilization\":["), std::string::npos);

    // The metrics pipeline round-trips it.
    RunMetrics m;
    m.name = "deploy";
    m.model = g.name();
    m.hasDeployment = true;
    m.deployment = r.deployment;
    std::string doc_text = metricsToJson("deployment_test", {m});
    JsonValue doc;
    std::string err;
    ASSERT_TRUE(parseJson(doc_text, &doc, &err)) << err;
    const JsonValue &run = doc.find("runs")->array().front();
    const JsonValue *dep = run.find("deployment");
    ASSERT_NE(dep, nullptr);
    EXPECT_EQ(dep->find("cores")->integer(), 2);
    EXPECT_EQ(dep->find("core_utilization")->array().size(), 2u);

    // Runs that never set the block keep the old document shape.
    RunMetrics bare;
    bare.name = "bare";
    bare.model = g.name();
    std::string bare_text = metricsToJson("deployment_test", {bare});
    ASSERT_TRUE(parseJson(bare_text, &doc, &err)) << err;
    EXPECT_EQ(doc.find("runs")->array().front().find("deployment"),
              nullptr);
}
