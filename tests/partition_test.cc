/**
 * @file
 * Tests for the partitioning layer: the Partition type, the repair
 * pipeline (structural + in-situ capacity), and the three baseline
 * algorithms (greedy, DP, exact enumeration), including the
 * optimality relations between them on small graphs.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "models/models.h"
#include "partition/dp.h"
#include "partition/enumeration.h"
#include "partition/greedy.h"
#include "partition/partition.h"
#include "partition/repair.h"
#include "util/random.h"

using namespace cocco;

namespace {

Layer
mkLayer(const char *name, LayerKind kind, int h, int w, int c, int k = 1,
        int s = 1)
{
    Layer l;
    l.name = name;
    l.kind = kind;
    l.outH = h;
    l.outW = w;
    l.outC = c;
    l.kernel = k;
    l.stride = s;
    return l;
}

/** input -> a -> {b, c} -> d. */
Graph
diamond()
{
    Graph g("diamond");
    g.addNode(mkLayer("in", LayerKind::Input, 16, 16, 8));
    g.addNode(mkLayer("a", LayerKind::Conv, 16, 16, 8, 3, 1), {0});
    g.addNode(mkLayer("b", LayerKind::Conv, 16, 16, 8, 3, 1), {1});
    g.addNode(mkLayer("c", LayerKind::Conv, 16, 16, 8, 1, 1), {1});
    g.addNode(mkLayer("d", LayerKind::Eltwise, 16, 16, 8), {2, 3});
    return g;
}

BufferConfig
roomyBuffer()
{
    BufferConfig c;
    c.style = BufferStyle::Separate;
    c.actBytes = 1024 * 1024;
    c.weightBytes = 1152 * 1024;
    return c;
}

} // namespace

// --- Partition type --------------------------------------------------------

TEST(Partition, SingletonsValid)
{
    Graph g = diamond();
    Partition p = Partition::singletons(g);
    EXPECT_TRUE(p.valid(g));
    EXPECT_EQ(p.blocks().size(), 5u);
}

TEST(Partition, FixedRunsCoverAllNodes)
{
    Graph g = diamond();
    Partition p = Partition::fixedRuns(g, 2);
    auto blocks = p.blocks();
    size_t total = 0;
    for (const auto &b : blocks)
        total += b.size();
    EXPECT_EQ(total, static_cast<size_t>(g.size()));
    EXPECT_EQ(blocks.size(), 3u);
}

TEST(Partition, BlockNodesSorted)
{
    Graph g = diamond();
    Partition p;
    p.block = {0, 0, 1, 1, 1};
    std::vector<NodeId> b1 = p.blockNodes(1);
    EXPECT_EQ(b1, (std::vector<NodeId>{2, 3, 4}));
}

TEST(Partition, CanonicalizeRenumbersTopologically)
{
    Graph g = diamond();
    Partition p;
    p.block = {7, 3, 3, 3, 9}; // arbitrary ids, valid structure
    p.canonicalize(g);
    EXPECT_EQ(p.block, (std::vector<int>{0, 1, 1, 1, 2}));
    EXPECT_EQ(p.numBlocks, 3);
    EXPECT_TRUE(p.valid(g));
}

TEST(Partition, ValidRejectsPrecedenceViolation)
{
    Graph g = diamond();
    Partition p;
    p.block = {1, 0, 0, 0, 0}; // input after its consumer's block
    EXPECT_FALSE(p.valid(g));
}

TEST(Partition, ValidRejectsDisconnectedBlock)
{
    Graph g = diamond();
    Partition p;
    p.block = {0, 0, 1, 1, 2}; // {b, c} are siblings: disconnected
    EXPECT_FALSE(p.valid(g));
}

TEST(Partition, StrShowsBlocks)
{
    Graph g = diamond();
    Partition p = Partition::fixedRuns(g, 5);
    EXPECT_EQ(p.str(), "{0,1,2,3,4}");
}

TEST(PartitionDeath, CanonicalizeOnCyclicQuotient)
{
    Graph g = diamond();
    Partition p;
    p.block = {0, 1, 0, 1, 1}; // in+b vs a+c+d: mutual dependencies
    EXPECT_DEATH(p.canonicalize(g), "cyclic quotient");
}

// --- Structural repair -------------------------------------------------------

TEST(Repair, FixesDisconnectedBlocks)
{
    Graph g = diamond();
    Partition p;
    p.block = {0, 0, 1, 1, 2}; // {b,c} disconnected
    Partition r = repairStructure(g, p);
    EXPECT_TRUE(r.valid(g));
}

TEST(Repair, FixesCyclicQuotient)
{
    Graph g = diamond();
    Partition p;
    p.block = {0, 1, 0, 1, 1};
    Partition r = repairStructure(g, p);
    EXPECT_TRUE(r.valid(g));
}

TEST(Repair, PreservesAlreadyValidPartitions)
{
    Graph g = diamond();
    Partition p;
    p.block = {0, 0, 1, 1, 1};
    ASSERT_TRUE(p.valid(g));
    Partition r = repairStructure(g, p);
    EXPECT_EQ(r.block, p.block);
}

/** Property: repair always yields a valid partition from random junk. */
class RepairFuzz : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(RepairFuzz, RandomAssignmentsBecomeValid)
{
    Graph g = buildGoogleNet();
    Rng rng(GetParam());
    Partition p;
    p.block.resize(g.size());
    int nb = 1 + static_cast<int>(rng.index(20));
    for (int &b : p.block)
        b = static_cast<int>(rng.index(nb));
    Partition r = repairStructure(g, p);
    EXPECT_TRUE(r.valid(g));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RepairFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

// --- Capacity repair (in-situ tuning) ----------------------------------------

TEST(CapacityRepair, SplitsOversizedBlocks)
{
    Graph g = buildResNet50();
    AcceleratorConfig accel;
    CostModel model(g, accel);

    BufferConfig tiny;
    tiny.style = BufferStyle::Separate;
    tiny.actBytes = 128 * 1024;
    tiny.weightBytes = 144 * 1024;

    // Whole model as one block is far beyond any buffer.
    Partition p = Partition::fixedRuns(g, g.size());
    Partition r = repairToCapacity(g, p, model, tiny);
    EXPECT_TRUE(r.valid(g));
    for (const auto &blk : r.blocks()) {
        if (blk.size() > 1) {
            EXPECT_TRUE(model.fits(blk, tiny));
        }
    }
}

TEST(CapacityRepair, LeavesFittingBlocksAlone)
{
    Graph g = diamond();
    CostModel model(g, {});
    Partition p;
    p.block = {0, 0, 1, 1, 1};
    Partition r = repairToCapacity(g, p, model, roomyBuffer());
    EXPECT_EQ(r.block, p.block);
}

// --- Greedy ------------------------------------------------------------------

TEST(Greedy, ProducesValidPartition)
{
    Graph g = buildGoogleNet();
    AcceleratorConfig accel;
    CostModel model(g, accel);
    Partition p = greedyPartition(g, model, roomyBuffer(), Metric::EMA);
    EXPECT_TRUE(p.valid(g));
}

TEST(Greedy, BeatsOrMatchesSingletons)
{
    Graph g = buildResNet50();
    AcceleratorConfig accel;
    CostModel model(g, accel);
    BufferConfig buf = roomyBuffer();
    Partition p = greedyPartition(g, model, buf, Metric::EMA);
    GraphCost greedy = model.partitionCost(p, buf);
    GraphCost single = model.partitionCost(Partition::singletons(g), buf);
    EXPECT_LE(greedy.emaBytes, single.emaBytes);
}

TEST(Greedy, AllBlocksFitBuffer)
{
    Graph g = buildGoogleNet();
    AcceleratorConfig accel;
    CostModel model(g, accel);
    BufferConfig buf = roomyBuffer();
    Partition p = greedyPartition(g, model, buf, Metric::EMA);
    for (const auto &blk : p.blocks())
        EXPECT_TRUE(model.fits(blk, buf));
}

TEST(Greedy, MergesDiamondFullyWithRoomyBuffer)
{
    Graph g = diamond();
    CostModel model(g, {});
    Partition p = greedyPartition(g, model, roomyBuffer(), Metric::EMA);
    // With ample capacity all compute nodes fuse into one subgraph
    // (the zero-cost input placeholder may stay separate).
    EXPECT_EQ(p.block[1], p.block[2]);
    EXPECT_EQ(p.block[1], p.block[3]);
    EXPECT_EQ(p.block[1], p.block[4]);
    EXPECT_LE(p.blocks().size(), 2u);
}

// --- DP ------------------------------------------------------------------------

TEST(Dp, ProducesValidPartition)
{
    Graph g = buildGoogleNet();
    AcceleratorConfig accel;
    CostModel model(g, accel);
    Partition p = dpPartition(g, model, roomyBuffer(), Metric::EMA);
    EXPECT_TRUE(p.valid(g));
}

TEST(Dp, BeatsOrMatchesSingletonsOnChain)
{
    Graph g = buildVGG16();
    AcceleratorConfig accel;
    CostModel model(g, accel);
    BufferConfig buf = roomyBuffer();
    Partition p = dpPartition(g, model, buf, Metric::EMA);
    GraphCost dp = model.partitionCost(p, buf);
    GraphCost single = model.partitionCost(Partition::singletons(g), buf);
    EXPECT_LE(dp.emaBytes, single.emaBytes);
}

TEST(Dp, RespectsMaxRun)
{
    Graph g = buildVGG16();
    AcceleratorConfig accel;
    CostModel model(g, accel);
    Partition p = dpPartition(g, model, roomyBuffer(), Metric::EMA, 2);
    for (const auto &blk : p.blocks())
        EXPECT_LE(blk.size(), 2u);
}

// --- Enumeration -----------------------------------------------------------------

TEST(Enumeration, OptimalOnDiamond)
{
    Graph g = diamond();
    CostModel model(g, {});
    BufferConfig buf = roomyBuffer();
    EnumerationResult r =
        enumeratePartition(g, model, buf, Metric::EMA);
    ASSERT_TRUE(r.complete);
    EXPECT_TRUE(r.best.valid(g));
    // Roomy buffer: fusing all compute nodes is optimal (the input
    // placeholder's block is cost-neutral).
    EXPECT_EQ(r.best.block[1], r.best.block[4]);
    EXPECT_LE(r.best.blocks().size(), 2u);
    GraphCost gc = model.partitionCost(r.best, buf);
    EXPECT_DOUBLE_EQ(r.cost, static_cast<double>(gc.emaBytes));
    // And the optimum hits the Min-EMA floor: weights + in + out.
    EXPECT_EQ(gc.emaBytes,
              g.totalWeightBytes() + g.outBytes(0) + g.outBytes(4));
}

TEST(Enumeration, LowerBoundsGreedyAndDp)
{
    Graph g = buildVGG16();
    AcceleratorConfig accel;
    CostModel model(g, accel);
    BufferConfig buf = roomyBuffer();

    EnumerationResult e = enumeratePartition(g, model, buf, Metric::EMA);
    ASSERT_TRUE(e.complete);
    Partition greedy = greedyPartition(g, model, buf, Metric::EMA);
    Partition dp = dpPartition(g, model, buf, Metric::EMA);

    double g_cost =
        static_cast<double>(model.partitionCost(greedy, buf).emaBytes);
    double d_cost =
        static_cast<double>(model.partitionCost(dp, buf).emaBytes);
    EXPECT_LE(e.cost, g_cost + 1e-6);
    EXPECT_LE(e.cost, d_cost + 1e-6);
}

TEST(Enumeration, BudgetAbortsOnIrregularGraphs)
{
    Graph g = buildRandWire('A', 1);
    AcceleratorConfig accel;
    CostModel model(g, accel);
    EnumerationOptions opts;
    opts.stateBudget = 200;
    opts.candidateBudget = 5000;
    EnumerationResult r =
        enumeratePartition(g, model, roomyBuffer(), Metric::EMA, opts);
    EXPECT_FALSE(r.complete);
}

TEST(Enumeration, TinyBufferForcesSingletons)
{
    Graph g = diamond();
    CostModel model(g, {});
    BufferConfig buf;
    buf.style = BufferStyle::Separate;
    buf.actBytes = 16;   // nothing multi-node fits
    buf.weightBytes = 16;
    EnumerationResult r = enumeratePartition(g, model, buf, Metric::EMA);
    ASSERT_TRUE(r.complete);
    EXPECT_EQ(r.best.blocks().size(), static_cast<size_t>(g.size()));
}

// --- Cross-algorithm property sweep over models -------------------------------

class AlgoComparison : public ::testing::TestWithParam<std::string>
{
};

TEST_P(AlgoComparison, AllProduceValidFittingPartitions)
{
    Graph g = buildModel(GetParam());
    AcceleratorConfig accel;
    CostModel model(g, accel);
    BufferConfig buf = roomyBuffer();

    Partition greedy = greedyPartition(g, model, buf, Metric::EMA);
    Partition dp = dpPartition(g, model, buf, Metric::EMA);
    EXPECT_TRUE(greedy.valid(g));
    EXPECT_TRUE(dp.valid(g));
    for (const auto &blk : greedy.blocks())
        EXPECT_TRUE(model.fits(blk, buf));
    EXPECT_TRUE(model.partitionCost(greedy, buf).feasible);
    EXPECT_TRUE(model.partitionCost(dp, buf).feasible);
}

INSTANTIATE_TEST_SUITE_P(Models, AlgoComparison,
                         ::testing::Values("VGG16", "ResNet50", "GoogleNet",
                                           "Transformer"),
                         [](const auto &info) { return info.param; });
