/**
 * @file
 * Tests for the model zoo: per-model structural facts (layer counts,
 * parameter sizes, MACs against published figures) and DAG sanity
 * properties shared by every builder.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <unordered_set>

#include "graph/algorithms.h"
#include "models/models.h"
#include "util/hash.h"
#include "util/json.h"

using namespace cocco;

namespace {

double
mb(int64_t bytes)
{
    return bytes / (1024.0 * 1024.0);
}

uint64_t
graphHash(const Graph &g)
{
    return hashFinalize(hashGraph(kHashSeed, g));
}

} // namespace

// --- Shared structural properties over all models ------------------------

class ModelProperty : public ::testing::TestWithParam<std::string>
{
  protected:
    Graph g_ = buildModel(GetParam());
};

TEST_P(ModelProperty, NonTrivialSize)
{
    EXPECT_GE(g_.size(), 10);
    EXPECT_GE(g_.numEdges(), g_.size() - 1);
}

TEST_P(ModelProperty, SingleInputNode)
{
    ASSERT_EQ(g_.inputs().size(), 1u);
    EXPECT_TRUE(g_.isInput(g_.inputs()[0]));
}

TEST_P(ModelProperty, HasModelOutput)
{
    EXPECT_GE(g_.outputs().size(), 1u);
}

TEST_P(ModelProperty, WeaklyConnectedWhole)
{
    std::vector<NodeId> all;
    for (NodeId v = 0; v < g_.size(); ++v)
        all.push_back(v);
    EXPECT_TRUE(isWeaklyConnected(g_, all));
}

TEST_P(ModelProperty, EdgesRespectTopoIds)
{
    for (NodeId v = 0; v < g_.size(); ++v)
        for (NodeId u : g_.preds(v))
            EXPECT_LT(u, v);
}

TEST_P(ModelProperty, UniqueLayerNames)
{
    std::set<std::string> names;
    for (NodeId v = 0; v < g_.size(); ++v)
        EXPECT_TRUE(names.insert(g_.layer(v).name).second)
            << "duplicate layer name " << g_.layer(v).name;
}

TEST_P(ModelProperty, PositiveComputeAndWeights)
{
    EXPECT_GT(g_.totalMacs(), 0);
    EXPECT_GT(g_.totalWeightBytes(), 0);
}

TEST_P(ModelProperty, NonInputNodesHaveProducers)
{
    for (NodeId v = 0; v < g_.size(); ++v)
        if (!g_.isInput(v)) {
            EXPECT_FALSE(g_.preds(v).empty());
        }
}

TEST_P(ModelProperty, EltwiseShapesMatchProducers)
{
    for (NodeId v = 0; v < g_.size(); ++v) {
        if (g_.layer(v).kind != LayerKind::Eltwise)
            continue;
        for (NodeId u : g_.preds(v)) {
            EXPECT_EQ(g_.layer(u).outH, g_.layer(v).outH);
            EXPECT_EQ(g_.layer(u).outW, g_.layer(v).outW);
            EXPECT_EQ(g_.layer(u).outC, g_.layer(v).outC);
        }
    }
}

TEST_P(ModelProperty, ConcatChannelsSumProducers)
{
    for (NodeId v = 0; v < g_.size(); ++v) {
        if (g_.layer(v).kind != LayerKind::Concat)
            continue;
        int c = 0;
        for (NodeId u : g_.preds(v))
            c += g_.layer(u).outC;
        EXPECT_EQ(g_.layer(v).outC, c);
    }
}

INSTANTIATE_TEST_SUITE_P(AllModels, ModelProperty,
                         ::testing::ValuesIn(allModelNames()),
                         [](const auto &info) {
                             std::string n = info.param;
                             for (char &c : n)
                                 if (c == '-')
                                     c = '_';
                             return n;
                         });

// --- Published-figure checks ---------------------------------------------

TEST(VGG16, ParameterCount)
{
    Graph g = buildVGG16();
    // ~138M parameters at 1 byte each.
    EXPECT_NEAR(mb(g.totalWeightBytes()), 132.0, 8.0);
}

TEST(VGG16, MacCount)
{
    Graph g = buildVGG16();
    // ~15.5 GMACs at 224x224.
    EXPECT_NEAR(g.totalMacs() / 1e9, 15.5, 1.0);
}

TEST(VGG16, SixteenWeightLayers)
{
    Graph g = buildVGG16();
    int convs = 0;
    for (NodeId v = 0; v < g.size(); ++v)
        if (g.layer(v).kind == LayerKind::Conv)
            ++convs;
    EXPECT_EQ(convs, 16); // 13 conv + 3 fc
}

TEST(ResNet50, ParameterCount)
{
    Graph g = buildResNet50();
    EXPECT_NEAR(mb(g.totalWeightBytes()), 24.4, 2.0); // ~25.5M params
}

TEST(ResNet50, MacCount)
{
    Graph g = buildResNet50();
    EXPECT_NEAR(g.totalMacs() / 1e9, 4.1, 0.5);
}

TEST(ResNet50, SixteenResidualAdds)
{
    Graph g = buildResNet50();
    int adds = 0;
    for (NodeId v = 0; v < g.size(); ++v)
        if (g.layer(v).kind == LayerKind::Eltwise)
            ++adds;
    EXPECT_EQ(adds, 16); // 3 + 4 + 6 + 3 blocks
}

TEST(ResNet152, DeeperThanResNet50)
{
    Graph g50 = buildResNet50();
    Graph g152 = buildResNet152();
    EXPECT_GT(g152.size(), 2 * g50.size());
    EXPECT_NEAR(mb(g152.totalWeightBytes()), 57.4, 5.0); // ~60M params
    EXPECT_NEAR(g152.totalMacs() / 1e9, 11.5, 1.5);
}

TEST(GoogleNet, ParameterCount)
{
    Graph g = buildGoogleNet();
    EXPECT_NEAR(mb(g.totalWeightBytes()), 6.6, 1.0); // ~7M params
}

TEST(GoogleNet, MacCount)
{
    Graph g = buildGoogleNet();
    EXPECT_NEAR(g.totalMacs() / 1e9, 1.5, 0.3);
}

TEST(GoogleNet, NineInceptionModules)
{
    Graph g = buildGoogleNet();
    int concats = 0;
    for (NodeId v = 0; v < g.size(); ++v)
        if (g.layer(v).kind == LayerKind::Concat)
            ++concats;
    EXPECT_EQ(concats, 9);
}

TEST(Transformer, ParameterCount)
{
    Graph g = buildTransformer();
    // Base encoder stack: 6 * (4 d^2 + 2 d ffn) ~ 19M.
    EXPECT_NEAR(mb(g.totalWeightBytes()), 18.0, 3.0);
}

TEST(Transformer, AttentionMatmulsPresent)
{
    Graph g = buildTransformer();
    int matmuls = 0;
    for (NodeId v = 0; v < g.size(); ++v)
        if (g.layer(v).kind == LayerKind::Matmul)
            ++matmuls;
    EXPECT_EQ(matmuls, 12); // 2 per layer x 6 layers
}

TEST(GPT, LargerThanTransformerEncoder)
{
    Graph t = buildTransformer();
    Graph g = buildGPT();
    EXPECT_GT(g.totalWeightBytes(), 3 * t.totalWeightBytes());
    EXPECT_NEAR(mb(g.totalWeightBytes()), 81.0, 10.0); // ~85M params
}

TEST(RandWire, Deterministic)
{
    Graph a = buildRandWire('A', 7);
    Graph b = buildRandWire('A', 7);
    ASSERT_EQ(a.size(), b.size());
    for (NodeId v = 0; v < a.size(); ++v) {
        EXPECT_EQ(a.preds(v), b.preds(v));
        EXPECT_EQ(a.layer(v).outC, b.layer(v).outC);
    }
}

TEST(RandWire, SeedsChangeWiring)
{
    Graph a = buildRandWire('A', 1);
    Graph b = buildRandWire('A', 2);
    bool differs = a.size() != b.size();
    if (!differs)
        for (NodeId v = 0; v < a.size() && !differs; ++v)
            differs = a.preds(v) != b.preds(v);
    EXPECT_TRUE(differs);
}

TEST(RandWire, VariantBIsLarger)
{
    Graph a = buildRandWire('A', 1);
    Graph b = buildRandWire('B', 1);
    EXPECT_GT(b.size(), a.size());
    EXPECT_GT(b.totalMacs(), a.totalMacs());
}

TEST(RandWire, IrregularInDegrees)
{
    Graph g = buildRandWire('A', 1);
    int max_preds = 0;
    for (NodeId v = 0; v < g.size(); ++v)
        max_preds = std::max<int>(max_preds,
                                  static_cast<int>(g.preds(v).size()));
    EXPECT_GE(max_preds, 3); // aggregation nodes exist
}

TEST(RandWireDeath, BadVariant)
{
    EXPECT_EXIT(buildRandWire('C'), ::testing::ExitedWithCode(1),
                "variant");
}

TEST(NasNet, LargestEvaluatedModel)
{
    Graph g = buildNasNet();
    EXPECT_GE(g.size(), 250);
    // Memory-intensive: activations of early cells are large.
    int64_t max_act = 0;
    for (NodeId v = 0; v < g.size(); ++v)
        max_act = std::max(max_act, g.outBytes(v));
    EXPECT_GT(max_act, 1024 * 1024); // > 1MB single tensor
}

TEST(NasNet, HasSeparableConvs)
{
    Graph g = buildNasNet();
    int dw = 0;
    for (NodeId v = 0; v < g.size(); ++v)
        if (g.layer(v).kind == LayerKind::DWConv)
            ++dw;
    EXPECT_GT(dw, 30);
}

TEST(Registry, AllNamesBuild)
{
    for (const std::string &name : allModelNames()) {
        Graph g = buildModel(name);
        EXPECT_GT(g.size(), 0) << name;
    }
}

TEST(Registry, RandWireAliasWorks)
{
    Graph g = buildModel("RandWire");
    EXPECT_EQ(g.name(), "RandWire-A");
}

TEST(RegistryDeath, UnknownModel)
{
    EXPECT_EXIT(buildModel("AlexNet"), ::testing::ExitedWithCode(1),
                "unknown model");
}

TEST(MobileNetV2, ParameterCount)
{
    Graph g = buildMobileNetV2();
    // ~3.5M parameters at 1 byte each.
    EXPECT_NEAR(mb(g.totalWeightBytes()), 3.3, 0.8);
}

TEST(MobileNetV2, MacCount)
{
    Graph g = buildMobileNetV2();
    // ~0.3 GMACs at 224x224.
    EXPECT_NEAR(g.totalMacs() / 1e9, 0.31, 0.1);
}

TEST(MobileNetV2, InvertedResidualsHaveAdds)
{
    Graph g = buildMobileNetV2();
    int adds = 0, dws = 0;
    for (NodeId v = 0; v < g.size(); ++v) {
        if (g.layer(v).kind == LayerKind::Eltwise)
            ++adds;
        if (g.layer(v).kind == LayerKind::DWConv)
            ++dws;
    }
    EXPECT_EQ(dws, 17); // one depth-wise per block
    EXPECT_EQ(adds, 10); // stride-1, channel-preserving blocks
}

TEST(SRCNN, ActivationsDwarfWeights)
{
    Graph g = buildSRCNN();
    int64_t max_act = 0;
    for (NodeId v = 0; v < g.size(); ++v)
        max_act = std::max(max_act, g.outBytes(v));
    // One feature map is dozens of times the whole weight set: the
    // regime where inter-layer fusion dominates.
    EXPECT_GT(max_act, 10 * g.totalWeightBytes());
}

TEST(SRCNN, PlainChainStructure)
{
    Graph g = buildSRCNN();
    for (NodeId v = 0; v < g.size(); ++v)
        EXPECT_LE(g.preds(v).size(), 1u);
    EXPECT_EQ(g.numEdges(), g.size() - 1);
}

// --- ModelRegistry ---------------------------------------------------------

TEST(ModelRegistry, KeysMatchAllModelNamesAndCarryMetadata)
{
    const ModelRegistry &reg = ModelRegistry::instance();
    EXPECT_EQ(reg.keys(), allModelNames());
    for (const std::string &name : reg.keys()) {
        EXPECT_TRUE(reg.contains(name));
        const ModelInfo &info = reg.info(name);
        EXPECT_EQ(info.name, name);
        EXPECT_FALSE(info.summary.empty()) << name;
        EXPECT_NE(info.knobs, 0u) << name;
        EXPECT_FALSE(modelKnobsStr(info).empty()) << name;
    }
    EXPECT_FALSE(reg.contains("AlexNet"));
}

TEST(ModelRegistry, AliasResolvesButIsNotListed)
{
    const ModelRegistry &reg = ModelRegistry::instance();
    EXPECT_TRUE(reg.contains("RandWire"));
    for (const std::string &name : reg.keys())
        EXPECT_NE(name, "RandWire");
}

TEST(ModelRegistry, DefaultParamsReproducePaperGraphs)
{
    // The whole parity contract: buildModel(name, {}) must be
    // bit-identical (by content hash) to the paper-default build.
    for (const std::string &name : allModelNames())
        EXPECT_EQ(graphHash(buildModel(name, ModelParams{})),
                  graphHash(buildModel(name)))
            << name;
}

// --- ModelParams knobs -----------------------------------------------------

TEST(ModelParams, WidthMultScalesWeights)
{
    ModelParams half;
    half.widthMult = 0.5;
    Graph full = buildModel("ResNet50");
    Graph thin = buildModel("ResNet50", half);
    EXPECT_EQ(thin.size(), full.size()); // topology unchanged
    EXPECT_LT(thin.totalWeightBytes(), full.totalWeightBytes() / 2);
    EXPECT_LT(thin.totalMacs(), full.totalMacs());
}

TEST(ModelParams, ResolutionScalesMacsNotWeights)
{
    ModelParams small;
    small.resolution = 112;
    Graph full = buildModel("VGG16");
    Graph low = buildModel("VGG16", small);
    // Conv MACs scale with spatial area (~4x); conv weights are
    // resolution-independent (only fc6's global kernel shrinks).
    EXPECT_LT(low.totalMacs(), full.totalMacs() / 2);
    EXPECT_LT(low.totalWeightBytes(), full.totalWeightBytes());
    EXPECT_GT(low.totalWeightBytes(), full.totalWeightBytes() / 4);
}

TEST(ModelParams, TokenModelKnobs)
{
    ModelParams p;
    p.seqLen = 128;
    p.depth = 2;
    Graph base = buildModel("Transformer");
    Graph small = buildModel("Transformer", p);
    // 2 layers instead of 6: a third of the stack.
    EXPECT_EQ(small.size() - 1, (base.size() - 1) / 3);
    EXPECT_EQ(small.layer(0).outH, 128); // tokens on the H axis
    EXPECT_LT(small.totalMacs(), base.totalMacs());
}

TEST(ModelParams, NasNetDepthAddsCells)
{
    ModelParams shallow;
    shallow.depth = 2;
    Graph base = buildModel("NasNet");
    Graph small = buildModel("NasNet", shallow);
    EXPECT_LT(small.size(), base.size());
}

TEST(ModelParams, RandWireSeedReachableByName)
{
    // The registry path must expose the generator seed: same seed,
    // same wiring as the direct builder; different seed, different
    // wiring (determinism per seed).
    ModelParams p;
    p.seed = 7;
    EXPECT_EQ(graphHash(buildModel("RandWire-A", p)),
              graphHash(buildRandWire('A', 7)));
    EXPECT_EQ(graphHash(buildModel("RandWire-A", p)),
              graphHash(buildModel("RandWire-A", p)));
    ModelParams q;
    q.seed = 8;
    EXPECT_NE(graphHash(buildModel("RandWire-A", p)),
              graphHash(buildModel("RandWire-A", q)));
}

TEST(ModelParams, IrrelevantKnobsAreIgnored)
{
    // A knob the builder does not read (seqLen on a CNN) must not
    // change the graph.
    ModelParams p;
    p.seqLen = 64;
    p.seed = 99;
    EXPECT_EQ(graphHash(buildModel("GoogleNet", p)),
              graphHash(buildModel("GoogleNet")));
}

TEST(ModelParamsDeath, BadValuesAreFatal)
{
    ModelParams bad_width;
    bad_width.widthMult = 0.0;
    EXPECT_EXIT(buildModel("ResNet50", bad_width),
                ::testing::ExitedWithCode(1), "widthMult");

    ModelParams bad_res;
    bad_res.resolution = -1;
    EXPECT_EXIT(buildModel("ResNet50", bad_res),
                ::testing::ExitedWithCode(1), ">= 0");

    // An absurd multiplier is rejected, not wrapped into a bogus
    // channel count.
    ModelParams huge;
    huge.widthMult = 1e7;
    EXPECT_EXIT(buildModel("ResNet50", huge),
                ::testing::ExitedWithCode(1), "beyond the supported");
}

// --- ModelParams JSON ------------------------------------------------------

namespace {

/** Parse @p text and read it as a params block. */
bool
paramsFrom(const char *text, ModelParams *out, std::string *err)
{
    JsonValue doc;
    EXPECT_TRUE(parseJson(text, &doc, err)) << *err;
    return modelParamsFromJson(doc, out, err);
}

} // namespace

TEST(ModelParamsJson, FullDocument)
{
    ModelParams p;
    std::string err;
    ASSERT_TRUE(paramsFrom(R"({"batch": 4, "resolution": 112,
                               "seqLen": 256, "depth": 3,
                               "widthMult": 0.75, "seed": 9})",
                           &p, &err))
        << err;
    EXPECT_EQ(p.batch, 4);
    EXPECT_EQ(p.resolution, 112);
    EXPECT_EQ(p.seqLen, 256);
    EXPECT_EQ(p.depth, 3);
    EXPECT_DOUBLE_EQ(p.widthMult, 0.75);
    EXPECT_EQ(p.seed, 9u);
}

TEST(ModelParamsJson, RejectsUnknownKeysAndBadValues)
{
    ModelParams p;
    std::string err;
    EXPECT_FALSE(paramsFrom(R"({"resolutoin": 112})", &p, &err));
    EXPECT_NE(err.find("resolutoin"), std::string::npos);

    err.clear();
    EXPECT_FALSE(paramsFrom(R"({"widthMult": 0})", &p, &err));
    EXPECT_NE(err.find("widthMult"), std::string::npos);

    err.clear();
    EXPECT_FALSE(paramsFrom(R"({"batch": 0})", &p, &err));
    EXPECT_NE(err.find("batch"), std::string::npos);

    err.clear();
    EXPECT_FALSE(paramsFrom(R"({"depth": "deep"})", &p, &err));
    EXPECT_NE(err.find("depth"), std::string::npos);

    err.clear();
    EXPECT_FALSE(paramsFrom(R"({"seed": -1})", &p, &err));
    EXPECT_NE(err.find("seed"), std::string::npos);
}
