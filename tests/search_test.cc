/**
 * @file
 * Tests for the search layer: genome encoding, the GA operators
 * (validity preservation under fuzzing), the GA/SA drivers, the
 * two-step baselines, and the CoccoFramework facade.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/cocco.h"
#include "search/operators.h"
#include "search/sa.h"
#include "search/two_step.h"

using namespace cocco;

namespace {

GaOptions
fastGa(int64_t budget = 600)
{
    GaOptions o;
    o.population = 30;
    o.sampleBudget = budget;
    o.seed = 7;
    return o;
}

} // namespace

// --- DseSpace / Genome ------------------------------------------------------

TEST(DseSpace, PaperSpaceGrids)
{
    DseSpace s = DseSpace::paperSpace(BufferStyle::Separate);
    EXPECT_TRUE(s.searchHw);
    EXPECT_EQ(s.actGrid.count, 31);
    EXPECT_EQ(s.weightGrid.count, 31);
    EXPECT_EQ(s.sharedGrid.count, 47);
}

TEST(DseSpace, FixedSpaceFreezesBuffer)
{
    BufferConfig buf;
    buf.style = BufferStyle::Shared;
    buf.sharedBytes = 512 * 1024;
    DseSpace s = DseSpace::fixedSpace(buf);
    EXPECT_FALSE(s.searchHw);

    Genome g;
    g.sharedIdx = 40; // must be ignored
    EXPECT_EQ(g.buffer(s).sharedBytes, 512 * 1024);
}

TEST(Genome, DecodesSeparateBuffers)
{
    DseSpace s = DseSpace::paperSpace(BufferStyle::Separate);
    Genome g;
    g.actIdx = 0;
    g.weightIdx = 1;
    BufferConfig buf = g.buffer(s);
    EXPECT_EQ(buf.actBytes, 128 * 1024);
    EXPECT_EQ(buf.weightBytes, 216 * 1024);
}

TEST(Genome, DecodesSharedBuffer)
{
    DseSpace s = DseSpace::paperSpace(BufferStyle::Shared);
    Genome g;
    g.sharedIdx = 2;
    EXPECT_EQ(g.buffer(s).sharedBytes, 256 * 1024);
}

// --- Operators: validity fuzzing ---------------------------------------------

class OperatorFuzz : public ::testing::TestWithParam<uint64_t>
{
  protected:
    Graph g_ = buildGoogleNet();
    DseSpace space_ = DseSpace::paperSpace(BufferStyle::Separate);
};

TEST_P(OperatorFuzz, RandomGenomeIsValid)
{
    Rng rng(GetParam());
    Genome g = randomGenome(g_, space_, rng);
    EXPECT_TRUE(g.part.valid(g_));
    EXPECT_GE(g.actIdx, 0);
    EXPECT_LT(g.actIdx, space_.actGrid.count);
}

TEST_P(OperatorFuzz, CrossoverPreservesValidity)
{
    Rng rng(GetParam());
    Genome dad = randomGenome(g_, space_, rng);
    Genome mom = randomGenome(g_, space_, rng);
    Genome child = crossover(g_, space_, dad, mom, rng);
    EXPECT_TRUE(child.part.valid(g_));
}

TEST_P(OperatorFuzz, CrossoverAveragesHardware)
{
    Rng rng(GetParam());
    Genome dad = randomGenome(g_, space_, rng);
    Genome mom = randomGenome(g_, space_, rng);
    Genome child = crossover(g_, space_, dad, mom, rng);
    int lo = std::min(dad.actIdx, mom.actIdx);
    int hi = std::max(dad.actIdx, mom.actIdx);
    EXPECT_GE(child.actIdx, lo);
    EXPECT_LE(child.actIdx, hi + 1);
}

TEST_P(OperatorFuzz, MutationsPreserveValidity)
{
    Rng rng(GetParam());
    Genome g = randomGenome(g_, space_, rng);
    for (int i = 0; i < 20; ++i) {
        Genome m = g;
        switch (rng.index(3)) {
          case 0:
            mutateModifyNode(g_, m, rng);
            break;
          case 1:
            mutateSplitSubgraph(g_, m, rng);
            break;
          default:
            mutateMergeSubgraph(g_, m, rng);
        }
        EXPECT_TRUE(m.part.valid(g_));
        g = std::move(m);
    }
}

TEST_P(OperatorFuzz, DseMutationStaysOnGrid)
{
    Rng rng(GetParam());
    Genome g = randomGenome(g_, space_, rng);
    for (int i = 0; i < 50; ++i) {
        mutateDse(space_, g, rng);
        EXPECT_GE(g.actIdx, 0);
        EXPECT_LT(g.actIdx, space_.actGrid.count);
        EXPECT_GE(g.weightIdx, 0);
        EXPECT_LT(g.weightIdx, space_.weightGrid.count);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OperatorFuzz,
                         ::testing::Values(11, 22, 33, 44, 55));

TEST(Operators, SplitIncreasesBlockCount)
{
    Graph g = buildVGG16();
    Rng rng(3);
    Genome genome;
    genome.part = Partition::fixedRuns(g, g.size()); // one block
    genome.part.canonicalize(g);
    size_t before = genome.part.blocks().size();
    mutateSplitSubgraph(g, genome, rng);
    EXPECT_GT(genome.part.blocks().size(), before);
}

TEST(Operators, MergeDecreasesBlockCountWhenSafe)
{
    Graph g = buildVGG16();
    Rng rng(3);
    Genome genome;
    genome.part = Partition::singletons(g);
    size_t before = genome.part.blocks().size();
    mutateMergeSubgraph(g, genome, rng);
    EXPECT_LT(genome.part.blocks().size(), before);
    EXPECT_TRUE(genome.part.valid(g));
}

// --- GA ------------------------------------------------------------------------

TEST(Ga, ImprovesOverRandomInitialization)
{
    Graph g = buildGoogleNet();
    AcceleratorConfig accel;
    CostModel model(g, accel);
    DseSpace space = DseSpace::paperSpace(BufferStyle::Shared);

    GeneticSearch search(model, space, fastGa(900));
    SearchResult r = search.run();
    ASSERT_FALSE(r.trace.empty());
    // Cost after the first population should improve by the end.
    double first = r.trace[29].bestCost; // after initial population
    EXPECT_LE(r.bestCost, first);
    EXPECT_LT(r.bestCost, kInfeasiblePenalty);
}

TEST(Ga, TraceIsMonotoneNonIncreasing)
{
    Graph g = buildGoogleNet();
    AcceleratorConfig accel;
    CostModel model(g, accel);
    DseSpace space = DseSpace::paperSpace(BufferStyle::Shared);
    SearchResult r = GeneticSearch(model, space, fastGa()).run();
    for (size_t i = 1; i < r.trace.size(); ++i)
        EXPECT_LE(r.trace[i].bestCost, r.trace[i - 1].bestCost);
}

TEST(Ga, RespectsSampleBudget)
{
    Graph g = buildGoogleNet();
    AcceleratorConfig accel;
    CostModel model(g, accel);
    DseSpace space = DseSpace::paperSpace(BufferStyle::Shared);
    GaOptions o = fastGa(250);
    SearchResult r = GeneticSearch(model, space, o).run();
    EXPECT_LE(r.samples, 250);
    EXPECT_EQ(static_cast<int64_t>(r.trace.size()), r.samples);
}

TEST(Ga, DeterministicForFixedSeed)
{
    Graph g = buildGoogleNet();
    AcceleratorConfig accel;
    CostModel m1(g, accel), m2(g, accel);
    DseSpace space = DseSpace::paperSpace(BufferStyle::Shared);
    SearchResult a = GeneticSearch(m1, space, fastGa()).run();
    SearchResult b = GeneticSearch(m2, space, fastGa()).run();
    EXPECT_DOUBLE_EQ(a.bestCost, b.bestCost);
    EXPECT_EQ(a.best.part.block, b.best.part.block);
}

TEST(Ga, BestGenomeIsValidAndFeasible)
{
    Graph g = buildResNet50();
    AcceleratorConfig accel;
    CostModel model(g, accel);
    DseSpace space = DseSpace::paperSpace(BufferStyle::Separate);
    SearchResult r = GeneticSearch(model, space, fastGa()).run();
    EXPECT_TRUE(r.best.part.valid(g));
    EXPECT_TRUE(r.bestGraphCost.feasible);
}

TEST(Ga, InSituTuningSplitsOversizedGenomes)
{
    Graph g = buildResNet50();
    AcceleratorConfig accel;
    CostModel model(g, accel);

    BufferConfig tiny;
    tiny.style = BufferStyle::Shared;
    tiny.sharedBytes = 128 * 1024;
    DseSpace space = DseSpace::fixedSpace(tiny);

    GeneticSearch search(model, space, fastGa(60));
    Genome one_block;
    one_block.part = Partition::fixedRuns(g, g.size());
    one_block.part.canonicalize(g);
    double cost = search.evaluate(one_block);
    EXPECT_LT(cost, kInfeasiblePenalty);
    EXPECT_GT(one_block.part.blocks().size(), 1u);
}

TEST(Ga, SeededInitializationIsUsed)
{
    Graph g = buildGoogleNet();
    AcceleratorConfig accel;
    CostModel model(g, accel);
    BufferConfig buf = BufferConfig::fixedMedium(BufferStyle::Shared);
    DseSpace space = DseSpace::fixedSpace(buf);

    // Seed with a strong partition; the GA must end at least as good.
    GaOptions o = fastGa(300);
    o.coExplore = false;
    GeneticSearch search(model, space, o);
    Genome seed;
    seed.part = Partition::fixedRuns(g, 3);
    seed.part.canonicalize(g);
    double seed_cost = GeneticSearch(model, space, o).evaluate(seed);
    SearchResult r = search.run({seed});
    EXPECT_LE(r.bestCost, seed_cost);
}

TEST(Ga, RecordPointsCapturesEverySample)
{
    Graph g = buildGoogleNet();
    AcceleratorConfig accel;
    CostModel model(g, accel);
    DseSpace space = DseSpace::paperSpace(BufferStyle::Shared);
    GaOptions o = fastGa(120);
    o.recordPoints = true;
    SearchResult r = GeneticSearch(model, space, o).run();
    EXPECT_EQ(static_cast<int64_t>(r.points.size()), r.samples);
    for (const SamplePoint &pt : r.points)
        EXPECT_GT(pt.bufferBytes, 0);
}

TEST(GaDeath, RejectsBadOptions)
{
    Graph g = buildGoogleNet();
    AcceleratorConfig accel;
    CostModel model(g, accel);
    DseSpace space = DseSpace::paperSpace(BufferStyle::Shared);
    GaOptions o;
    o.population = 1;
    EXPECT_EXIT(GeneticSearch(model, space, o), ::testing::ExitedWithCode(1),
                "population");
}

// --- SA ------------------------------------------------------------------------

TEST(Sa, FindsFeasibleSolution)
{
    Graph g = buildGoogleNet();
    AcceleratorConfig accel;
    CostModel model(g, accel);
    DseSpace space = DseSpace::paperSpace(BufferStyle::Shared);
    SaOptions o;
    o.sampleBudget = 600;
    o.seed = 5;
    SearchResult r = simulatedAnnealing(model, space, o);
    EXPECT_LT(r.bestCost, kInfeasiblePenalty);
    EXPECT_TRUE(r.best.part.valid(g));
    EXPECT_EQ(r.samples, 600);
}

TEST(Sa, TraceMonotone)
{
    Graph g = buildGoogleNet();
    AcceleratorConfig accel;
    CostModel model(g, accel);
    DseSpace space = DseSpace::paperSpace(BufferStyle::Shared);
    SaOptions o;
    o.sampleBudget = 300;
    SearchResult r = simulatedAnnealing(model, space, o);
    for (size_t i = 1; i < r.trace.size(); ++i)
        EXPECT_LE(r.trace[i].bestCost, r.trace[i - 1].bestCost);
}

// --- Two-step baselines -----------------------------------------------------------

TEST(TwoStep, RandomSearchProducesFeasibleResult)
{
    Graph g = buildGoogleNet();
    AcceleratorConfig accel;
    CostModel model(g, accel);
    DseSpace space = DseSpace::paperSpace(BufferStyle::Shared);
    TwoStepOptions o;
    o.sampleBudget = 600;
    o.samplesPerCandidate = 150;
    o.population = 30;
    SearchResult r = twoStepRandom(model, space, o);
    EXPECT_LT(r.bestCost, kInfeasiblePenalty);
    EXPECT_LE(r.samples, 600);
}

TEST(TwoStep, GridSearchWalksLargeToSmall)
{
    Graph g = buildGoogleNet();
    AcceleratorConfig accel;
    CostModel model(g, accel);
    DseSpace space = DseSpace::paperSpace(BufferStyle::Shared);
    TwoStepOptions o;
    o.sampleBudget = 600;
    o.samplesPerCandidate = 150;
    o.population = 30;
    SearchResult r = twoStepGrid(model, space, o);
    EXPECT_LT(r.bestCost, kInfeasiblePenalty);
    EXPECT_GT(r.bestBuffer.totalBytes(), 0);
}

// --- Facade -----------------------------------------------------------------------

TEST(Framework, CoExploreSharedEndToEnd)
{
    Graph g = buildGoogleNet();
    CoccoFramework cocco(g, AcceleratorConfig{});
    GaOptions o = fastGa(400);
    CoccoResult r = cocco.coExplore(BufferStyle::Shared, o);
    EXPECT_TRUE(r.cost.feasible);
    EXPECT_GT(r.buffer.sharedBytes, 0);
    EXPECT_TRUE(r.partition.valid(g));
    EXPECT_GT(r.cost.emaBytes, 0);
}

TEST(Framework, PartitionOnlyUsesFixedBuffer)
{
    Graph g = buildGoogleNet();
    CoccoFramework cocco(g, AcceleratorConfig{});
    BufferConfig buf = BufferConfig::fixedMedium(BufferStyle::Separate);
    CoccoResult r = cocco.partitionOnly(buf, fastGa(400));
    EXPECT_EQ(r.buffer.actBytes, buf.actBytes);
    EXPECT_EQ(r.buffer.weightBytes, buf.weightBytes);
    EXPECT_TRUE(r.cost.feasible);
}

TEST(Framework, CoExploreBeatsWorstFixedConfig)
{
    // The headline claim, in miniature: co-exploration should not be
    // worse than the worst fixed-hardware baseline.
    Graph g = buildGoogleNet();
    CoccoFramework cocco(g, AcceleratorConfig{});
    GaOptions o = fastGa(800);
    CoccoResult co = cocco.coExplore(BufferStyle::Shared, o);

    double worst = 0;
    for (auto fixed : {BufferConfig::fixedSmall(BufferStyle::Shared),
                       BufferConfig::fixedMedium(BufferStyle::Shared),
                       BufferConfig::fixedLarge(BufferStyle::Shared)}) {
        CoccoResult r = cocco.partitionOnly(fixed, o);
        double obj = objective(r.cost, fixed, o.alpha, o.metric);
        worst = std::max(worst, obj);
    }
    EXPECT_LE(co.objective, worst);
}
