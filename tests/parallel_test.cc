/**
 * @file
 * Tests for the parallel evaluation engine: the thread pool, the
 * thread-safe sharded CostModel profile memo, the EvalEngine batch
 * semantics, and thread-count invariance of the GA/SA/two-step
 * drivers (identical best objective, sample count, and trace for
 * threads=1 and threads=4).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "core/cocco.h"
#include "search/operators.h"
#include "search/sa.h"
#include "search/two_step.h"
#include "util/thread_pool.h"

using namespace cocco;

// --- ThreadPool -------------------------------------------------------------

TEST(ThreadPool, CoversEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4);
    const size_t n = 10000;
    std::vector<std::atomic<int>> hits(n);
    pool.parallelFor(n, [&](size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, SingleThreadRunsInline)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.size(), 1);
    int calls = 0;
    pool.parallelFor(5, [&](size_t) { ++calls; });
    EXPECT_EQ(calls, 5);
}

TEST(ThreadPool, ReusableAcrossJobsAndHandlesEmpty)
{
    ThreadPool pool(3);
    pool.parallelFor(0, [&](size_t) { FAIL() << "empty job ran"; });
    for (int round = 0; round < 50; ++round) {
        std::atomic<size_t> sum{0};
        size_t n = static_cast<size_t>(1 + round * 7 % 97);
        pool.parallelFor(n, [&](size_t i) {
            sum.fetch_add(i + 1, std::memory_order_relaxed);
        });
        EXPECT_EQ(sum.load(), n * (n + 1) / 2);
    }
}

TEST(ThreadPool, ResolveThreadsDefaultsToHardware)
{
    EXPECT_EQ(ThreadPool::resolveThreads(3), 3);
    EXPECT_GE(ThreadPool::resolveThreads(0), 1);
    EXPECT_GE(ThreadPool::resolveThreads(-1), 1);
}

// --- CostModel thread safety ------------------------------------------------

namespace {

/** A spread of subgraphs: every block of the L=1..6 fixed-run
 *  partitions (plus a few random ones). */
std::vector<std::vector<NodeId>>
sampleSubgraphs(const Graph &g)
{
    std::vector<std::vector<NodeId>> out;
    for (int run = 1; run <= 6; ++run) {
        Partition p = Partition::fixedRuns(g, run);
        p.canonicalize(g);
        for (auto &blk : p.blocks())
            out.push_back(blk);
    }
    DseSpace space = DseSpace::paperSpace(BufferStyle::Shared);
    Rng rng(99);
    for (int i = 0; i < 4; ++i) {
        Genome genome = randomGenome(g, space, rng);
        for (auto &blk : genome.part.blocks())
            out.push_back(blk);
    }
    return out;
}

} // namespace

TEST(CostModelParallel, ConcurrentProfileMatchesSerial)
{
    Graph g = buildGoogleNet();
    AcceleratorConfig accel;
    std::vector<std::vector<NodeId>> subgraphs = sampleSubgraphs(g);

    // Hammer one model from 8 threads, every subgraph requested many
    // times concurrently.
    CostModel concurrent(g, accel);
    ThreadPool pool(8);
    const size_t repeat = 16;
    pool.parallelFor(subgraphs.size() * repeat, [&](size_t i) {
        concurrent.profile(subgraphs[i % subgraphs.size()]);
    });

    // Every memoized profile must match a serially-built model.
    CostModel serial(g, accel);
    for (const auto &nodes : subgraphs) {
        const SubgraphProfile &a = concurrent.profile(nodes);
        const SubgraphProfile &b = serial.profile(nodes);
        EXPECT_EQ(a.inBytes, b.inBytes);
        EXPECT_EQ(a.outBytes, b.outBytes);
        EXPECT_EQ(a.weightBytes, b.weightBytes);
        EXPECT_EQ(a.macs, b.macs);
        EXPECT_EQ(a.actFootprintBytes, b.actFootprintBytes);
        EXPECT_EQ(a.glbTraffic, b.glbTraffic);
        EXPECT_EQ(a.mappedCycles, b.mappedCycles);
    }
    EXPECT_EQ(concurrent.cacheSize(), serial.cacheSize());
}

TEST(CostModelParallel, ProfileKeyIsOrderIndependent)
{
    Graph g = buildGoogleNet();
    AcceleratorConfig accel;
    CostModel model(g, accel);

    Partition p = Partition::fixedRuns(g, 4);
    p.canonicalize(g);
    std::vector<NodeId> nodes = p.blocks().front();
    ASSERT_GT(nodes.size(), 1u);
    std::vector<NodeId> reversed(nodes.rbegin(), nodes.rend());

    // Same canonical node set -> same memo entry, not a duplicate.
    const SubgraphProfile &a = model.profile(nodes);
    const SubgraphProfile &b = model.profile(reversed);
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(model.cacheSize(), 1u);
}

// --- EvalEngine -------------------------------------------------------------

TEST(EvalEngine, BatchMatchesSerialEvaluation)
{
    Graph g = buildGoogleNet();
    AcceleratorConfig accel;
    DseSpace space = DseSpace::paperSpace(BufferStyle::Shared);

    Rng rng(17);
    std::vector<Genome> batch;
    for (int i = 0; i < 24; ++i)
        batch.push_back(randomGenome(g, space, rng));
    std::vector<Genome> copies = batch;

    EvalOptions eo;
    eo.threads = 4;
    CostModel m1(g, accel);
    EvalEngine parallel_engine(m1, space, eo);
    std::vector<double> costs = parallel_engine.evaluateBatch(batch);

    eo.threads = 1;
    CostModel m2(g, accel);
    EvalEngine serial_engine(m2, space, eo);
    for (size_t i = 0; i < copies.size(); ++i) {
        double c = serial_engine.evaluate(copies[i]);
        EXPECT_EQ(costs[i], c) << "genome " << i;
        // In-situ tuning must be applied identically.
        EXPECT_EQ(batch[i].part.block, copies[i].part.block);
    }
}

// --- Thread-count invariance of the drivers ---------------------------------

namespace {

GaOptions
fastGa(int threads)
{
    GaOptions o;
    o.population = 24;
    o.sampleBudget = 480;
    o.seed = 7;
    o.threads = threads;
    return o;
}

void
expectSameResult(const SearchResult &a, const SearchResult &b)
{
    EXPECT_EQ(a.bestCost, b.bestCost); // bit-identical, no tolerance
    EXPECT_EQ(a.samples, b.samples);
    EXPECT_EQ(a.best.part.block, b.best.part.block);
    ASSERT_EQ(a.trace.size(), b.trace.size());
    for (size_t i = 0; i < a.trace.size(); ++i) {
        EXPECT_EQ(a.trace[i].sample, b.trace[i].sample);
        EXPECT_EQ(a.trace[i].bestCost, b.trace[i].bestCost) << "at " << i;
    }
}

} // namespace

TEST(ParallelSearch, GaIdenticalForOneAndFourThreads)
{
    Graph g = buildGoogleNet();
    AcceleratorConfig accel;
    DseSpace space = DseSpace::paperSpace(BufferStyle::Shared);

    CostModel m1(g, accel);
    SearchResult serial = GeneticSearch(m1, space, fastGa(1)).run();
    CostModel m4(g, accel);
    SearchResult parallel = GeneticSearch(m4, space, fastGa(4)).run();

    expectSameResult(serial, parallel);
    EXPECT_LT(serial.bestCost, kInfeasiblePenalty);
}

TEST(ParallelSearch, GaSeededRunsAreThreadCountInvariant)
{
    Graph g = buildGoogleNet();
    AcceleratorConfig accel;
    DseSpace space = DseSpace::paperSpace(BufferStyle::Shared);
    Genome seed;
    seed.part = Partition::fixedRuns(g, 3);
    seed.part.canonicalize(g);

    CostModel m1(g, accel);
    SearchResult serial = GeneticSearch(m1, space, fastGa(1)).run({seed});
    CostModel m4(g, accel);
    SearchResult parallel = GeneticSearch(m4, space, fastGa(4)).run({seed});
    expectSameResult(serial, parallel);
}

TEST(ParallelSearch, SaIdenticalForOneAndFourThreads)
{
    Graph g = buildGoogleNet();
    AcceleratorConfig accel;
    DseSpace space = DseSpace::paperSpace(BufferStyle::Shared);

    SaOptions o;
    o.sampleBudget = 400;
    o.seed = 5;
    o.neighborBatch = 4; // fixed batch: results must not depend on threads

    o.threads = 1;
    CostModel m1(g, accel);
    SearchResult serial = simulatedAnnealing(m1, space, o);
    o.threads = 4;
    CostModel m4(g, accel);
    SearchResult parallel = simulatedAnnealing(m4, space, o);

    expectSameResult(serial, parallel);
    EXPECT_EQ(serial.samples, 400);
}

TEST(ParallelSearch, TwoStepIdenticalForOneAndFourThreads)
{
    Graph g = buildGoogleNet();
    AcceleratorConfig accel;
    DseSpace space = DseSpace::paperSpace(BufferStyle::Shared);

    TwoStepOptions o;
    o.sampleBudget = 450;
    o.samplesPerCandidate = 150;
    o.population = 24;

    o.threads = 1;
    CostModel m1(g, accel);
    SearchResult serial = twoStepGrid(m1, space, o);
    o.threads = 4;
    CostModel m4(g, accel);
    SearchResult parallel = twoStepGrid(m4, space, o);

    expectSameResult(serial, parallel);
}

TEST(ParallelSearch, FrameworkThreadsKnobEndToEnd)
{
    Graph g = buildGoogleNet();
    CoccoFramework serial_fw(g, AcceleratorConfig{});
    CoccoResult a = serial_fw.coExplore(BufferStyle::Shared, fastGa(1));
    CoccoFramework parallel_fw(g, AcceleratorConfig{});
    CoccoResult b = parallel_fw.coExplore(BufferStyle::Shared, fastGa(4));

    EXPECT_EQ(a.objective, b.objective);
    EXPECT_EQ(a.samples, b.samples);
    EXPECT_EQ(a.partition.block, b.partition.block);
    EXPECT_TRUE(b.cost.feasible);
}
