/**
 * @file
 * Tests for the Graph JSON workload form: content-hash-stable
 * round-trips for every registered model (the imported copy is
 * indistinguishable from the compiled-in graph), file save/load, and
 * strict rejection of malformed documents (unknown keys, type
 * mismatches, non-topological edges, structural violations).
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "graph/graph_json.h"
#include "models/models.h"
#include "util/hash.h"
#include "util/json.h"

using namespace cocco;

namespace {

uint64_t
graphHash(const Graph &g)
{
    return hashFinalize(hashGraph(kHashSeed, g));
}

/** Parse + import @p text, expecting success. */
Graph
import(const std::string &text)
{
    JsonValue doc;
    std::string err;
    EXPECT_TRUE(parseJson(text, &doc, &err)) << err;
    Graph g;
    EXPECT_TRUE(graphFromJson(doc, &g, &err)) << err;
    return g;
}

/** Parse + import @p text, expecting failure; returns the error. */
std::string
importError(const std::string &text)
{
    JsonValue doc;
    std::string err;
    EXPECT_TRUE(parseJson(text, &doc, &err)) << err;
    Graph g;
    EXPECT_FALSE(graphFromJson(doc, &g, &err));
    EXPECT_FALSE(err.empty());
    return err;
}

/** A minimal valid two-node document to perturb in rejection tests. */
const char *kTinyDoc = R"({
    "schema_version": 1,
    "name": "tiny",
    "nodes": [
        {"name": "in", "kind": "input", "outH": 8, "outW": 8, "outC": 4},
        {"name": "c1", "kind": "conv", "outH": 8, "outW": 8, "outC": 4,
         "kernel": 3, "stride": 1, "preds": [0]}
    ]
})";

} // namespace

// --- Round trips -----------------------------------------------------------

class ModelRoundTrip : public ::testing::TestWithParam<std::string>
{
};

TEST_P(ModelRoundTrip, HashStable)
{
    Graph original = buildModel(GetParam());
    Graph copy = import(graphToJson(original));

    // The imported copy is the same workload to every consumer:
    // identical name, structure, derived totals, and content hash.
    EXPECT_EQ(copy.name(), original.name());
    ASSERT_EQ(copy.size(), original.size());
    EXPECT_EQ(copy.numEdges(), original.numEdges());
    EXPECT_EQ(copy.totalMacs(), original.totalMacs());
    EXPECT_EQ(copy.totalWeightBytes(), original.totalWeightBytes());
    EXPECT_EQ(graphHash(copy), graphHash(original));
}

TEST_P(ModelRoundTrip, ExportIsIdempotent)
{
    Graph g = buildModel(GetParam());
    std::string once = graphToJson(g);
    EXPECT_EQ(graphToJson(import(once)), once);
}

INSTANTIATE_TEST_SUITE_P(AllModels, ModelRoundTrip,
                         ::testing::ValuesIn(allModelNames()),
                         [](const auto &info) {
                             std::string n = info.param;
                             for (char &c : n)
                                 if (c == '-')
                                     c = '_';
                             return n;
                         });

TEST(GraphJsonFile, SaveLoadRoundTrip)
{
    Graph g = buildModel("GoogleNet");
    std::string path = ::testing::TempDir() + "cocco_graph_rt.json";
    ASSERT_TRUE(saveGraphJson(g, path));

    Graph copy;
    std::string err;
    ASSERT_TRUE(loadGraphJson(path, &copy, &err)) << err;
    EXPECT_EQ(graphHash(copy), graphHash(g));
    std::remove(path.c_str());
}

TEST(GraphJsonFile, MissingFileIsAnError)
{
    Graph g;
    std::string err;
    EXPECT_FALSE(loadGraphJson("/nonexistent/graph.json", &g, &err));
    EXPECT_NE(err.find("cannot read"), std::string::npos);
}

TEST(GraphJson, OptionalFieldsDefault)
{
    // kernel/stride default to 1 and preds to [] on import.
    Graph g = import(R"({
        "schema_version": 1, "name": "one",
        "nodes": [{"name": "in", "kind": "input",
                   "outH": 4, "outW": 4, "outC": 2}]
    })");
    EXPECT_EQ(g.size(), 1);
    EXPECT_EQ(g.layer(0).kernel, 1);
    EXPECT_EQ(g.layer(0).stride, 1);
    EXPECT_TRUE(g.isInput(0));
}

// --- Rejections ------------------------------------------------------------

TEST(GraphJsonReject, UnknownKeys)
{
    EXPECT_NE(importError(R"({
        "schema_version": 1, "name": "x", "nodes": [], "colour": 3
    })").find("colour"), std::string::npos);

    std::string err = importError(R"({
        "schema_version": 1, "name": "x",
        "nodes": [{"name": "in", "kind": "input", "outH": 1,
                   "outW": 1, "outC": 1, "padding": 2}]
    })");
    EXPECT_NE(err.find("padding"), std::string::npos);
}

TEST(GraphJsonReject, TypeMismatches)
{
    EXPECT_NE(importError(R"({
        "schema_version": 1, "name": 7, "nodes": []
    })").find("name"), std::string::npos);

    std::string err = importError(R"({
        "schema_version": 1, "name": "x",
        "nodes": [{"name": "in", "kind": "input", "outH": "tall",
                   "outW": 1, "outC": 1}]
    })");
    EXPECT_NE(err.find("outH"), std::string::npos);
}

TEST(GraphJsonReject, CyclicOrForwardEdges)
{
    // A self-loop (the smallest cycle) and a forward reference are
    // both "pred is not an earlier node".
    std::string self_loop = importError(R"({
        "schema_version": 1, "name": "x",
        "nodes": [
            {"name": "in", "kind": "input", "outH": 1, "outW": 1,
             "outC": 1},
            {"name": "c", "kind": "conv", "outH": 1, "outW": 1,
             "outC": 1, "preds": [1]}
        ]
    })");
    EXPECT_NE(self_loop.find("earlier node"), std::string::npos);

    std::string forward = importError(R"({
        "schema_version": 1, "name": "x",
        "nodes": [
            {"name": "in", "kind": "input", "outH": 1, "outW": 1,
             "outC": 1},
            {"name": "a", "kind": "conv", "outH": 1, "outW": 1,
             "outC": 1, "preds": [2]},
            {"name": "b", "kind": "conv", "outH": 1, "outW": 1,
             "outC": 1, "preds": [1]}
        ]
    })");
    EXPECT_NE(forward.find("earlier node"), std::string::npos);
}

TEST(GraphJsonReject, DuplicatePreds)
{
    // A repeated pred would double-count the producer's channels in
    // every derived weight/MAC figure.
    std::string err = importError(R"({
        "schema_version": 1, "name": "x",
        "nodes": [
            {"name": "in", "kind": "input", "outH": 1, "outW": 1,
             "outC": 1},
            {"name": "c", "kind": "conv", "outH": 1, "outW": 1,
             "outC": 1, "preds": [0, 0]}
        ]
    })");
    EXPECT_NE(err.find("duplicate pred"), std::string::npos);
}

TEST(GraphJsonReject, StructuralViolations)
{
    // Input with preds.
    EXPECT_NE(importError(R"({
        "schema_version": 1, "name": "x",
        "nodes": [
            {"name": "a", "kind": "input", "outH": 1, "outW": 1,
             "outC": 1},
            {"name": "b", "kind": "input", "outH": 1, "outW": 1,
             "outC": 1, "preds": [0]}
        ]
    })").find("input node"), std::string::npos);

    // Non-input without preds.
    EXPECT_NE(importError(R"({
        "schema_version": 1, "name": "x",
        "nodes": [{"name": "c", "kind": "conv", "outH": 1, "outW": 1,
                   "outC": 1}]
    })").find("pred"), std::string::npos);

    // Duplicate names.
    EXPECT_NE(importError(R"({
        "schema_version": 1, "name": "x",
        "nodes": [
            {"name": "in", "kind": "input", "outH": 1, "outW": 1,
             "outC": 1},
            {"name": "in", "kind": "conv", "outH": 1, "outW": 1,
             "outC": 1, "preds": [0]}
        ]
    })").find("duplicate"), std::string::npos);

    // Non-positive shape.
    EXPECT_NE(importError(R"({
        "schema_version": 1, "name": "x",
        "nodes": [{"name": "in", "kind": "input", "outH": 0, "outW": 1,
                   "outC": 1}]
    })").find(">= 1"), std::string::npos);

    // Unknown layer kind.
    EXPECT_NE(importError(R"({
        "schema_version": 1, "name": "x",
        "nodes": [{"name": "in", "kind": "softmax", "outH": 1,
                   "outW": 1, "outC": 1}]
    })").find("softmax"), std::string::npos);
}

TEST(GraphJsonReject, MissingRequiredFields)
{
    EXPECT_NE(importError(R"({"name": "x", "nodes": []})")
                  .find("schema_version"),
              std::string::npos);
    EXPECT_NE(importError(R"({"schema_version": 1, "nodes": []})")
                  .find("name"),
              std::string::npos);
    EXPECT_NE(importError(R"({"schema_version": 1, "name": "x"})")
                  .find("nodes"),
              std::string::npos);
    EXPECT_NE(importError(R"({"schema_version": 1, "name": "x",
                              "nodes": []})")
                  .find("empty"),
              std::string::npos);
    EXPECT_NE(importError(R"({"schema_version": 2, "name": "x",
                              "nodes": []})")
                  .find("schema_version"),
              std::string::npos);

    std::string err = importError(R"({
        "schema_version": 1, "name": "x",
        "nodes": [{"name": "in", "kind": "input", "outH": 1, "outW": 1}]
    })");
    EXPECT_NE(err.find("required"), std::string::npos);
}

TEST(GraphJsonReject, NonObjectDocument)
{
    Graph g;
    std::string err;
    JsonValue doc;
    ASSERT_TRUE(parseJson("[1, 2]", &doc, &err));
    EXPECT_FALSE(graphFromJson(doc, &g, &err));
    EXPECT_NE(err.find("object"), std::string::npos);
}

TEST(GraphJson, TinyDocImports)
{
    Graph g = import(kTinyDoc);
    EXPECT_EQ(g.name(), "tiny");
    EXPECT_EQ(g.size(), 2);
    EXPECT_EQ(g.macs(1), 8LL * 8 * 4 * 3 * 3 * 4);
}
