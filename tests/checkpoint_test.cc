/**
 * @file
 * Tests for search checkpoint/resume (search/checkpoint.h + the
 * core/serialize persistence): Rng state round trips, fence
 * sensitivity, and the headline contract — a run cancelled mid-flight
 * and resumed from its checkpoint finishes bit-identical to the
 * uninterrupted run, for every registered algorithm, at threads > 1,
 * and even when the resume uses a different thread count.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "core/cocco.h"
#include "core/serialize.h"
#include "models/random_dag.h"
#include "search/checkpoint.h"
#include "util/random.h"

using namespace cocco;

namespace {

Graph
mediumGraph()
{
    RandomDagOptions o;
    o.convNodes = 24;
    return buildRandomDag(21, o);
}

/** The standard spec of these tests: co-explore, 2 threads, budgets
 *  small enough for the sanitizer lane. */
SearchSpec
makeSpec(const std::string &algo, int64_t budget)
{
    SearchSpec spec;
    spec.algo = algo;
    spec.style = BufferStyle::Shared;
    spec.eval.sampleBudget = budget;
    spec.eval.seed = 9;
    spec.eval.threads = 2;
    spec.eval.cacheEnabled = false;
    spec.ga.population = 20;
    spec.twoStep.population = 10;
    spec.twoStep.samplesPerCandidate = 100;
    return spec;
}

/** Observer that requests cancellation once @p after samples have
 *  been folded (at the next batch boundary). */
class CancelAfter : public SearchObserver
{
  public:
    explicit CancelAfter(int64_t after) : after_(after) {}

    void
    onBatchDone(int64_t samples, double) override
    {
        seen_ = samples;
    }

    bool
    cancelled() override
    {
        return seen_ >= after_;
    }

  private:
    int64_t after_;
    int64_t seen_ = 0;
};

/** Everything a run reports, compared exactly. */
void
expectSameRun(const CoccoResult &a, const CoccoResult &b)
{
    EXPECT_EQ(a.objective, b.objective);
    EXPECT_EQ(a.samples, b.samples);
    EXPECT_EQ(a.buffer.style, b.buffer.style);
    EXPECT_EQ(a.buffer.totalBytes(), b.buffer.totalBytes());
    EXPECT_EQ(a.partition.block, b.partition.block);
    ASSERT_EQ(a.trace.size(), b.trace.size());
    for (size_t i = 0; i < a.trace.size(); ++i) {
        EXPECT_EQ(a.trace[i].sample, b.trace[i].sample);
        EXPECT_EQ(a.trace[i].bestCost, b.trace[i].bestCost) << "i=" << i;
    }
}

/** Run @p algo straight, then cancelled-at-half + resumed, and
 *  require the resumed run to match the straight one exactly.
 *  @p resumeThreads exercises resume under a different thread count
 *  (results must not depend on it). */
void
checkResumeIdentity(const std::string &algo, int64_t budget,
                    int resumeThreads)
{
    Graph g = mediumGraph();
    AcceleratorConfig accel;

    SearchSpec spec = makeSpec(algo, budget);
    CoccoResult straight = CoccoFramework(g, accel).explore(spec);
    EXPECT_EQ(straight.stop, StopReason::BudgetExhausted);

    // Cancel mid-run; saveOnStop persists the state at the boundary.
    SearchCheckpoint saved;
    bool haveSaved = false;
    CancelAfter cancel(budget / 2);
    CheckpointHooks saveHooks;
    saveHooks.save = [&](const SearchCheckpoint &c) {
        saved = c;
        haveSaved = true;
    };
    SearchSpec interrupted = spec;
    interrupted.eval.observer = &cancel;
    interrupted.eval.checkpoint = &saveHooks;
    CoccoResult partial = CoccoFramework(g, accel).explore(interrupted);
    EXPECT_EQ(partial.stop, StopReason::Cancelled);
    ASSERT_TRUE(haveSaved) << algo;
    EXPECT_EQ(saved.algo, algo);
    EXPECT_LT(saved.samples, budget) << algo;

    // Resume to the end and compare against the uninterrupted run.
    CheckpointHooks resumeHooks;
    resumeHooks.resume = &saved;
    SearchSpec resumedSpec = spec;
    resumedSpec.eval.threads = resumeThreads;
    resumedSpec.eval.checkpoint = &resumeHooks;
    CoccoResult resumed = CoccoFramework(g, accel).explore(resumedSpec);
    EXPECT_EQ(resumed.stop, StopReason::BudgetExhausted);
    expectSameRun(straight, resumed);
}

TEST(Checkpoint, RngStateRoundTrip)
{
    Rng a(42);
    for (int i = 0; i < 17; ++i)
        a.next();
    std::array<uint64_t, 4> mid = a.state();
    std::vector<uint64_t> tail;
    for (int i = 0; i < 8; ++i)
        tail.push_back(a.next());

    Rng b(7); // different seed: state() must fully define the stream
    b.setState(mid);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(b.next(), tail[static_cast<size_t>(i)]) << "i=" << i;
}

TEST(Checkpoint, FenceCoversRunIdentity)
{
    Graph g = mediumGraph();
    AcceleratorConfig accel;
    CostModel model(g, accel);
    DseSpace space = DseSpace::paperSpace(BufferStyle::Shared);

    SearchSpec spec = makeSpec("ga", 400);
    uint64_t base = gaCheckpointFence(model, space, gaOptions(spec));
    EXPECT_EQ(base, gaCheckpointFence(model, space, gaOptions(spec)));

    SearchSpec other = spec;
    other.eval.seed = 10;
    EXPECT_NE(base, gaCheckpointFence(model, space, gaOptions(other)));
    other = spec;
    other.eval.sampleBudget = 500;
    EXPECT_NE(base, gaCheckpointFence(model, space, gaOptions(other)));
    other = spec;
    other.ga.population = 21;
    EXPECT_NE(base, gaCheckpointFence(model, space, gaOptions(other)));

    // Threads and pruning are deliberately outside the fence: both
    // are result-neutral, so a resume may change them.
    other = spec;
    other.eval.threads = 7;
    other.eval.pruning = false;
    EXPECT_EQ(base, gaCheckpointFence(model, space, gaOptions(other)));

    // The two-step fences separate the two sweep styles.
    SearchSpec ts = makeSpec("ts-random", 300);
    EXPECT_NE(twoStepCheckpointFence(model, space, twoStepOptions(ts),
                                     "ts-random"),
              twoStepCheckpointFence(model, space, twoStepOptions(ts),
                                     "ts-grid"));
}

TEST(Checkpoint, GaResumeBitIdentical)
{
    checkResumeIdentity("ga", 400, 2);
}

TEST(Checkpoint, GaResumeAcrossThreadCounts)
{
    checkResumeIdentity("ga", 400, 1);
}

TEST(Checkpoint, SaResumeBitIdentical)
{
    checkResumeIdentity("sa", 300, 2);
}

TEST(Checkpoint, TsRandomResumeBitIdentical)
{
    checkResumeIdentity("ts-random", 300, 2);
}

TEST(Checkpoint, TsGridResumeBitIdentical)
{
    checkResumeIdentity("ts-grid", 300, 2);
}

TEST(Checkpoint, RequestFlagSavesWithoutStopping)
{
    Graph g = mediumGraph();
    AcceleratorConfig accel;
    SearchSpec spec = makeSpec("ga", 400);
    CoccoResult straight = CoccoFramework(g, accel).explore(spec);

    SearchCheckpoint saved;
    bool haveSaved = false;
    CheckpointHooks hooks;
    hooks.save = [&](const SearchCheckpoint &c) {
        saved = c;
        haveSaved = true;
    };
    hooks.request.store(true); // one mid-run snapshot, please
    hooks.saveOnStop = false;
    SearchSpec monitored = spec;
    monitored.eval.checkpoint = &hooks;
    CoccoResult full = CoccoFramework(g, accel).explore(monitored);

    // The snapshot must not perturb the run...
    expectSameRun(straight, full);
    ASSERT_TRUE(haveSaved);
    EXPECT_LT(saved.samples, spec.eval.sampleBudget);

    // ...and resuming from it must land on the same final result.
    CheckpointHooks resumeHooks;
    resumeHooks.resume = &saved;
    SearchSpec resumedSpec = spec;
    resumedSpec.eval.checkpoint = &resumeHooks;
    CoccoResult resumed = CoccoFramework(g, accel).explore(resumedSpec);
    expectSameRun(straight, resumed);
}

TEST(Checkpoint, FileRoundTripResumes)
{
    Graph g = mediumGraph();
    AcceleratorConfig accel;
    SearchSpec spec = makeSpec("ga", 400);
    CoccoResult straight = CoccoFramework(g, accel).explore(spec);

    SearchCheckpoint saved;
    bool haveSaved = false;
    CancelAfter cancel(200);
    CheckpointHooks hooks;
    hooks.save = [&](const SearchCheckpoint &c) {
        saved = c;
        haveSaved = true;
    };
    SearchSpec interrupted = spec;
    interrupted.eval.observer = &cancel;
    interrupted.eval.checkpoint = &hooks;
    CoccoFramework(g, accel).explore(interrupted);
    ASSERT_TRUE(haveSaved);

    std::string path = "checkpoint_test_roundtrip.tmp";
    ASSERT_TRUE(saveCheckpoint(saved, path));

    SearchCheckpoint loaded;
    std::string err;
    ASSERT_TRUE(loadCheckpoint(path, &loaded, &err)) << err;
    EXPECT_EQ(loaded.algo, saved.algo);
    EXPECT_EQ(loaded.fence, saved.fence);
    EXPECT_EQ(loaded.samples, saved.samples);
    EXPECT_EQ(loaded.bestCost, saved.bestCost); // hexfloat: bit-exact
    EXPECT_EQ(loaded.rng, saved.rng);
    EXPECT_EQ(loaded.streamCounter, saved.streamCounter);
    ASSERT_EQ(loaded.population.size(), saved.population.size());
    EXPECT_EQ(loaded.popCosts, saved.popCosts);

    CheckpointHooks resumeHooks;
    resumeHooks.resume = &loaded;
    SearchSpec resumedSpec = spec;
    resumedSpec.eval.checkpoint = &resumeHooks;
    CoccoResult resumed = CoccoFramework(g, accel).explore(resumedSpec);
    expectSameRun(straight, resumed);
    std::remove(path.c_str());
}

TEST(Checkpoint, LoaderRejectsCorruptFiles)
{
    SearchCheckpoint out;
    std::string err;
    EXPECT_FALSE(loadCheckpoint("checkpoint_test_missing.tmp", &out,
                                &err));
    EXPECT_FALSE(err.empty());

    // Wrong magic.
    std::string path = "checkpoint_test_corrupt.tmp";
    std::FILE *f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fprintf(f, "NOT-A-CHECKPOINT 1\n");
    std::fclose(f);
    err.clear();
    EXPECT_FALSE(loadCheckpoint(path, &out, &err));
    EXPECT_FALSE(err.empty());

    // A truncated real checkpoint must be rejected outright (a
    // partial resume would silently fork the run).
    Graph g = mediumGraph();
    AcceleratorConfig accel;
    SearchCheckpoint saved;
    bool haveSaved = false;
    CancelAfter cancel(100);
    CheckpointHooks hooks;
    hooks.save = [&](const SearchCheckpoint &c) {
        saved = c;
        haveSaved = true;
    };
    SearchSpec spec = makeSpec("ga", 400);
    spec.eval.observer = &cancel;
    spec.eval.checkpoint = &hooks;
    CoccoFramework(g, accel).explore(spec);
    ASSERT_TRUE(haveSaved);
    ASSERT_TRUE(saveCheckpoint(saved, path));

    std::FILE *in = std::fopen(path.c_str(), "rb");
    ASSERT_NE(in, nullptr);
    std::fseek(in, 0, SEEK_END);
    long size = std::ftell(in);
    std::fseek(in, 0, SEEK_SET);
    std::string text(static_cast<size_t>(size), '\0');
    ASSERT_EQ(std::fread(text.data(), 1, text.size(), in), text.size());
    std::fclose(in);

    std::FILE *outF = std::fopen(path.c_str(), "wb");
    ASSERT_NE(outF, nullptr);
    std::fwrite(text.data(), 1, text.size() / 2, outF);
    std::fclose(outF);
    err.clear();
    EXPECT_FALSE(loadCheckpoint(path, &out, &err));
    EXPECT_FALSE(err.empty());
    std::remove(path.c_str());
}

} // namespace
