/**
 * @file
 * Tests for the NWHC8c tile-layout model (paper Figure 7): entry
 * counts per region, byte sizes, and the address arithmetic.
 */

#include <gtest/gtest.h>

#include <set>

#include "mem/layout.h"

using namespace cocco;

TEST(TileLayout, ChannelGroupsRoundUp)
{
    EXPECT_EQ(TileLayout(4, 4, 8).channelGroups(), 1);
    EXPECT_EQ(TileLayout(4, 4, 9).channelGroups(), 2);
    EXPECT_EQ(TileLayout(4, 4, 64).channelGroups(), 8);
    EXPECT_EQ(TileLayout(4, 4, 3).channelGroups(), 1);
}

TEST(TileLayout, Figure7EntryCounts)
{
    // Figure 7: a P0 x Q0 x C tile occupies Q0 groups of
    // ceil(C/8) x P0 entries.
    TileLayout l(6, 3, 32); // P0=6, Q0=3, C=32
    EXPECT_EQ(l.entriesPerColumn(), 4 * 6); // C/8 x P0
    EXPECT_EQ(l.mainEntries(), 3 * 4 * 6);
    EXPECT_EQ(l.mainBytes(), 3 * 4 * 6 * 8); // 64-bit words
}

TEST(TileLayout, SideRegionEntries)
{
    // (Q - Q0) groups of ceil(C/8) x (Fy - sy) entries.
    TileLayout l(6, 3, 32);
    EXPECT_EQ(l.sideEntries(2, 10), 4 * 2 * 7);
    EXPECT_EQ(l.sideBytes(2, 10), 4 * 2 * 7 * 8);
}

TEST(TileLayout, SideRegionZeroCases)
{
    TileLayout l(6, 3, 32);
    EXPECT_EQ(l.sideEntries(0, 10), 0);  // kernel == stride
    EXPECT_EQ(l.sideEntries(2, 3), 0);   // tile covers full width
    EXPECT_EQ(l.sideEntries(-1, 10), 0); // stride > kernel
}

TEST(TileLayout, EntryOfOrigin)
{
    TileLayout l(4, 4, 16);
    EXPECT_EQ(l.entryOf(0, 0, 0), 0);
    EXPECT_EQ(l.entryOf(0, 0, 7), 0);  // same 8-channel group word
    EXPECT_EQ(l.entryOf(1, 0, 0), 1);  // next row, same column/group
    EXPECT_EQ(l.entryOf(0, 0, 8), 4);  // second channel group
    EXPECT_EQ(l.entryOf(0, 1, 0), 8);  // next column: groups x P0
}

TEST(TileLayout, AddressesAreUniquePerWord)
{
    TileLayout l(3, 3, 16);
    std::set<int64_t> seen;
    for (int p = 0; p < 3; ++p)
        for (int q = 0; q < 3; ++q)
            for (int grp = 0; grp < 2; ++grp)
                EXPECT_TRUE(seen.insert(l.entryOf(p, q, grp * 8)).second);
    EXPECT_EQ(static_cast<int64_t>(seen.size()), l.mainEntries());
}

TEST(TileLayout, AddressesDenselyCoverRegion)
{
    TileLayout l(5, 2, 24);
    std::set<int64_t> seen;
    for (int p = 0; p < 5; ++p)
        for (int q = 0; q < 2; ++q)
            for (int c = 0; c < 24; c += 8)
                seen.insert(l.entryOf(p, q, c));
    EXPECT_EQ(*seen.begin(), 0);
    EXPECT_EQ(*seen.rbegin(), l.mainEntries() - 1);
}

TEST(TileLayoutDeath, OutOfRange)
{
    TileLayout l(4, 4, 16);
    EXPECT_DEATH(l.entryOf(4, 0, 0), "out of range");
    EXPECT_DEATH(l.entryOf(0, 4, 0), "out of range");
    EXPECT_DEATH(l.entryOf(0, 0, 16), "out of range");
    EXPECT_DEATH(l.entryOf(-1, 0, 0), "out of range");
}

TEST(TileLayoutDeath, BadConstruction)
{
    EXPECT_EXIT(TileLayout(0, 4, 16), ::testing::ExitedWithCode(1),
                "non-positive");
    EXPECT_EXIT(TileLayout(4, 4, 16, 0), ::testing::ExitedWithCode(1),
                "alignment");
}

/** Entry counts scale linearly in each dimension. */
class LayoutSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(LayoutSweep, MainEntriesLinearInTileWidth)
{
    int q0 = GetParam();
    TileLayout base(4, 1, 32);
    TileLayout wide(4, q0, 32);
    EXPECT_EQ(wide.mainEntries(), base.mainEntries() * q0);
}

INSTANTIATE_TEST_SUITE_P(Widths, LayoutSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 16));
