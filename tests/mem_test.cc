/**
 * @file
 * Tests for the mem module: buffer configuration grids, the SRAM
 * energy/area model, and the buffer-region-manager model including
 * the paper's 272-byte register-file overhead figure.
 */

#include <gtest/gtest.h>

#include "mem/buffer_config.h"
#include "mem/energy_model.h"
#include "mem/region_manager.h"

using namespace cocco;

namespace {
constexpr int64_t kKB = 1024;
} // namespace

// --- BufferConfig ---------------------------------------------------------

TEST(BufferConfig, TotalBytesSeparate)
{
    BufferConfig c;
    c.style = BufferStyle::Separate;
    c.actBytes = 100;
    c.weightBytes = 50;
    c.sharedBytes = 999; // ignored
    EXPECT_EQ(c.totalBytes(), 150);
}

TEST(BufferConfig, TotalBytesShared)
{
    BufferConfig c;
    c.style = BufferStyle::Shared;
    c.sharedBytes = 777;
    EXPECT_EQ(c.totalBytes(), 777);
}

TEST(BufferConfig, StrFormats)
{
    BufferConfig sep;
    sep.style = BufferStyle::Separate;
    sep.actBytes = 704 * kKB;
    sep.weightBytes = 864 * kKB;
    EXPECT_EQ(sep.str(), "A=704KB W=864KB");

    BufferConfig sh;
    sh.style = BufferStyle::Shared;
    sh.sharedBytes = 1344 * kKB;
    EXPECT_EQ(sh.str(), "1344KB");
}

TEST(BufferConfig, PaperFixedBaselines)
{
    BufferConfig s = BufferConfig::fixedSmall(BufferStyle::Separate);
    EXPECT_EQ(s.actBytes, 512 * kKB);
    EXPECT_EQ(s.weightBytes, 576 * kKB);
    BufferConfig m = BufferConfig::fixedMedium(BufferStyle::Shared);
    EXPECT_EQ(m.sharedBytes, 1152 * kKB);
    BufferConfig l = BufferConfig::fixedLarge(BufferStyle::Separate);
    EXPECT_EQ(l.actBytes, 2048 * kKB);
    EXPECT_EQ(l.weightBytes, 2304 * kKB);
}

// --- Capacity grids -------------------------------------------------------

TEST(CapacityGrid, PaperGlobalGrid)
{
    CapacityGrid g = globalBufferGrid();
    EXPECT_EQ(g.value(0), 128 * kKB);
    EXPECT_EQ(g.value(g.count - 1), 2048 * kKB);
    EXPECT_EQ(g.value(1) - g.value(0), 64 * kKB);
}

TEST(CapacityGrid, PaperWeightGrid)
{
    CapacityGrid g = weightBufferGrid();
    EXPECT_EQ(g.value(0), 144 * kKB);
    EXPECT_EQ(g.value(g.count - 1), 2304 * kKB);
    EXPECT_EQ(g.value(1) - g.value(0), 72 * kKB);
}

TEST(CapacityGrid, PaperSharedGrid)
{
    CapacityGrid g = sharedBufferGrid();
    EXPECT_EQ(g.value(0), 128 * kKB);
    EXPECT_EQ(g.value(g.count - 1), 3072 * kKB);
}

TEST(CapacityGrid, ValueClampsIndex)
{
    CapacityGrid g = globalBufferGrid();
    EXPECT_EQ(g.value(-5), g.value(0));
    EXPECT_EQ(g.value(g.count + 10), g.value(g.count - 1));
}

TEST(CapacityGrid, IndexOfRoundTrips)
{
    CapacityGrid g = weightBufferGrid();
    for (int i = 0; i < g.count; ++i)
        EXPECT_EQ(g.indexOf(g.value(i)), i);
}

TEST(CapacityGrid, IndexOfNearest)
{
    CapacityGrid g = globalBufferGrid();
    EXPECT_EQ(g.indexOf(128 * kKB + 10), 0);
    EXPECT_EQ(g.indexOf(190 * kKB), 1);
    EXPECT_EQ(g.indexOf(0), 0);
    EXPECT_EQ(g.indexOf(1LL << 40), g.count - 1);
}

// --- EnergyModel ----------------------------------------------------------

TEST(EnergyModel, DramAnchor)
{
    EnergyModel em;
    // 12.5 pJ/bit = 100 pJ/B (paper Section 5.1.2).
    EXPECT_DOUBLE_EQ(em.dramEnergyPj(1), 100.0);
    EXPECT_DOUBLE_EQ(em.dramEnergyPj(1024), 102400.0);
}

TEST(EnergyModel, SramEnergyGrowsWithCapacity)
{
    EnergyModel em;
    double small = em.sramPjPerByte(64 * kKB);
    double large = em.sramPjPerByte(2048 * kKB);
    EXPECT_GT(large, small);
    EXPECT_GT(small, 0.0);
}

TEST(EnergyModel, OneMegabyteCostsAboutDozensOfMacs)
{
    EnergyModel em;
    double per_byte = em.sramPjPerByte(1024 * kKB);
    double ratio = per_byte / em.macPj;
    EXPECT_GT(ratio, 10.0);
    EXPECT_LT(ratio, 60.0);
}

TEST(EnergyModel, SramAreaMatchesPaperRange)
{
    EnergyModel em;
    // Paper: 1-2 mm^2 per MB in 12nm.
    double mm2 = em.sramAreaMm2(1024 * kKB);
    EXPECT_GE(mm2, 1.0);
    EXPECT_LE(mm2, 2.0);
}

TEST(EnergyModel, SramFloorForTinyBuffers)
{
    EnergyModel em;
    EXPECT_GT(em.sramPjPerByte(16), 0.0);
    EXPECT_LE(em.sramPjPerByte(16), em.sramPjPerByte(1024 * kKB));
}

// --- RegionManager --------------------------------------------------------

TEST(RegionManager, PaperRegisterFileOverhead)
{
    // N = 64 regions, 17-bit addresses -> 272 bytes (paper Section 3.2).
    RegionManager mgr(64, 17);
    EXPECT_EQ(mgr.registerFileBytes(), 272);
}

TEST(RegionManager, AllocatePacksContiguously)
{
    ExecutionScheme s;
    NodeScheme a;
    a.node = 0;
    a.mainBytes = 100;
    a.sideBytes = 20;
    NodeScheme b;
    b.node = 1;
    b.mainBytes = 50;
    s.nodes = {a, b};
    s.numRegions = 3;
    s.actFootprintBytes = 170;

    RegionManager mgr;
    RegionAllocation alloc = mgr.allocate(s, 1024);
    EXPECT_TRUE(alloc.fits);
    ASSERT_EQ(alloc.regions.size(), 3u);
    EXPECT_EQ(alloc.regions[0].start, 0);
    EXPECT_EQ(alloc.regions[0].end, 100);
    EXPECT_TRUE(alloc.regions[1].side);
    EXPECT_EQ(alloc.regions[1].start, 100);
    EXPECT_EQ(alloc.regions[2].end, 170);
    EXPECT_EQ(alloc.usedBytes, 170);
}

TEST(RegionManager, RejectsOverCapacity)
{
    ExecutionScheme s;
    NodeScheme a;
    a.node = 0;
    a.mainBytes = 2048;
    s.nodes = {a};
    s.numRegions = 1;

    RegionManager mgr;
    EXPECT_FALSE(mgr.allocate(s, 1024).fits);
    EXPECT_TRUE(mgr.allocate(s, 1024).regionLimitOk);
}

TEST(RegionManager, RejectsTooManyRegions)
{
    ExecutionScheme s;
    for (int i = 0; i < 70; ++i) {
        NodeScheme n;
        n.node = i;
        n.mainBytes = 1;
        s.nodes.push_back(n);
    }
    s.numRegions = 70;

    RegionManager mgr(64);
    RegionAllocation alloc = mgr.allocate(s, 1 << 20);
    EXPECT_FALSE(alloc.regionLimitOk);
    EXPECT_FALSE(alloc.fits);
}

TEST(RegionManagerDeath, BadParameters)
{
    EXPECT_EXIT(RegionManager(0), ::testing::ExitedWithCode(1),
                "at least one region");
    EXPECT_EXIT(RegionManager(64, 0), ::testing::ExitedWithCode(1),
                "address width");
}

/** Register-file scaling across manager depths. */
class RegionDepthSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(RegionDepthSweep, RegisterFileScalesLinearly)
{
    int n = GetParam();
    RegionManager mgr(n, 17);
    EXPECT_EQ(mgr.registerFileBytes(), (2LL * n * 17 + 7) / 8);
}

INSTANTIATE_TEST_SUITE_P(Depths, RegionDepthSweep,
                         ::testing::Values(1, 8, 16, 32, 64, 128));
