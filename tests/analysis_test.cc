/**
 * @file
 * Tests for the analysis layer: the execution timeline, Pareto-front
 * extraction, and graph statistics.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "graph/stats.h"
#include "models/models.h"
#include "search/pareto.h"
#include "sim/timeline.h"

using namespace cocco;

namespace {

BufferConfig
roomy()
{
    BufferConfig c;
    c.style = BufferStyle::Shared;
    c.sharedBytes = 2048 * 1024;
    return c;
}

} // namespace

// --- Timeline ----------------------------------------------------------------

TEST(Timeline, EntriesTileTheTotal)
{
    Graph g = buildGoogleNet();
    AcceleratorConfig accel;
    CostModel model(g, accel);
    Partition p = Partition::singletons(g);
    Timeline tl = buildTimeline(model, p, roomy());

    ASSERT_EQ(tl.entries.size(), p.blocks().size());
    double cursor = 0.0;
    for (const TimelineEntry &e : tl.entries) {
        EXPECT_DOUBLE_EQ(e.startCycle, cursor);
        EXPECT_GE(e.endCycle, e.startCycle);
        cursor = e.endCycle;
    }
    EXPECT_DOUBLE_EQ(tl.totalCycles, cursor);
}

TEST(Timeline, MatchesPartitionCostLatency)
{
    Graph g = buildGoogleNet();
    AcceleratorConfig accel;
    CostModel model(g, accel);
    Partition p = Partition::fixedRuns(g, 3);
    BufferConfig buf = roomy();
    Timeline tl = buildTimeline(model, p, buf);
    GraphCost gc = model.partitionCost(p, buf);
    if (gc.feasible) {
        EXPECT_NEAR(tl.totalCycles, gc.latencyCycles, 1e-6);
    }
}

TEST(Timeline, BoundClassificationConsistent)
{
    Graph g = buildGoogleNet();
    AcceleratorConfig accel;
    CostModel model(g, accel);
    Timeline tl = buildTimeline(model, Partition::singletons(g), roomy());
    for (const TimelineEntry &e : tl.entries) {
        if (e.endCycle == e.startCycle)
            continue;
        EXPECT_EQ(e.computeBound, e.computeCycles >= e.commCycles);
        double window = std::max(e.computeCycles, e.commCycles);
        EXPECT_NEAR(e.endCycle - e.startCycle, window, window * 0.5 + 1);
    }
    double f = tl.computeBoundFraction();
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
}

TEST(Timeline, PrefetchListedForAllButLast)
{
    Graph g = buildVGG16();
    AcceleratorConfig accel;
    CostModel model(g, accel);
    Partition p = Partition::fixedRuns(g, 6);
    p.canonicalize(g);
    Timeline tl = buildTimeline(model, p, roomy());
    ASSERT_GE(tl.entries.size(), 2u);
    EXPECT_EQ(tl.entries.back().prefetchBytes, 0);
    // VGG's later blocks carry weights, so earlier windows prefetch.
    bool any_prefetch = false;
    for (size_t i = 0; i + 1 < tl.entries.size(); ++i)
        any_prefetch |= tl.entries[i].prefetchBytes > 0;
    EXPECT_TRUE(any_prefetch);
}

TEST(Timeline, GanttRenders)
{
    Graph g = buildGoogleNet();
    AcceleratorConfig accel;
    CostModel model(g, accel);
    Timeline tl =
        buildTimeline(model, Partition::fixedRuns(g, 10), roomy());
    std::string gantt = tl.gantt(40);
    EXPECT_NE(gantt.find("sg0"), std::string::npos);
    EXPECT_NE(gantt.find("total"), std::string::npos);

    Timeline empty;
    EXPECT_EQ(empty.gantt(), "(empty timeline)\n");
}

// --- Pareto front -------------------------------------------------------------

TEST(Pareto, ExtractsUndominatedPoints)
{
    std::vector<SamplePoint> pts{
        {1, 100.0, 10}, {2, 90.0, 20}, {3, 120.0, 30}, // dominated
        {4, 50.0, 40},  {5, 55.0, 50},                 // dominated
    };
    auto front = paretoFront(pts);
    ASSERT_EQ(front.size(), 3u);
    EXPECT_EQ(front[0].bufferBytes, 10);
    EXPECT_EQ(front[1].bufferBytes, 20);
    EXPECT_EQ(front[2].bufferBytes, 40);
}

TEST(Pareto, KeepsBestMetricPerCapacity)
{
    std::vector<SamplePoint> pts{{1, 100.0, 10}, {2, 80.0, 10}};
    auto front = paretoFront(pts);
    ASSERT_EQ(front.size(), 1u);
    EXPECT_DOUBLE_EQ(front[0].metric, 80.0);
}

TEST(Pareto, AlphaRangesPartitionThePositiveAxis)
{
    std::vector<SamplePoint> pts{
        {1, 100.0, 10}, {2, 60.0, 30}, {3, 50.0, 60}};
    auto front = paretoFront(pts);
    ASSERT_EQ(front.size(), 3u);
    EXPECT_DOUBLE_EQ(front[0].alphaLo, 0.0);
    // Point 1 -> 2: alpha = (30-10)/(100-60) = 0.5.
    EXPECT_DOUBLE_EQ(front[0].alphaHi, 0.5);
    EXPECT_DOUBLE_EQ(front[1].alphaLo, 0.5);
    // Point 2 -> 3: alpha = (60-30)/(60-50) = 3.
    EXPECT_DOUBLE_EQ(front[1].alphaHi, 3.0);
    EXPECT_TRUE(std::isinf(front[2].alphaHi));
}

TEST(Pareto, SelectByAlphaMatchesRanges)
{
    std::vector<SamplePoint> pts{
        {1, 100.0, 10}, {2, 60.0, 30}, {3, 50.0, 60}};
    auto front = paretoFront(pts);
    EXPECT_EQ(selectByAlpha(front, 0.1).bufferBytes, 10);
    EXPECT_EQ(selectByAlpha(front, 1.0).bufferBytes, 30);
    EXPECT_EQ(selectByAlpha(front, 10.0).bufferBytes, 60);
}

TEST(Pareto, LargerAlphaNeverShrinksCapacity)
{
    // Monotone selection: the economic core of Figure 14.
    std::vector<SamplePoint> pts;
    for (int i = 0; i < 50; ++i)
        pts.push_back({i, 1000.0 / (1 + i % 13), (i % 13 + 1) * 64});
    auto front = paretoFront(pts);
    int64_t prev = 0;
    for (double alpha : {0.01, 0.1, 1.0, 10.0, 100.0}) {
        int64_t cap = selectByAlpha(front, alpha).bufferBytes;
        EXPECT_GE(cap, prev);
        prev = cap;
    }
}

TEST(ParetoDeath, EmptyFront)
{
    EXPECT_DEATH(selectByAlpha({}, 1.0), "empty front");
}

// --- Graph statistics ----------------------------------------------------------

TEST(Stats, CountsMatchGraph)
{
    Graph g = buildResNet50();
    GraphStats s = computeStats(g);
    EXPECT_EQ(s.nodes, g.size());
    EXPECT_EQ(s.edges, g.numEdges());
    EXPECT_EQ(s.totalWeightBytes, g.totalWeightBytes());
    EXPECT_EQ(s.totalMacs, g.totalMacs());
    EXPECT_GT(s.depth, 30);
    EXPECT_GE(s.maxFanIn, 2);  // residual adds
    EXPECT_GE(s.maxFanOut, 2); // residual forks
    EXPECT_EQ(s.branchNodes, s.mergeNodes); // symmetric residuals
}

TEST(Stats, ChainHasUnitWidth)
{
    Graph g = buildSRCNN();
    GraphStats s = computeStats(g);
    EXPECT_EQ(s.maxWidth, 1);
    EXPECT_EQ(s.branchNodes, 0);
    EXPECT_EQ(s.mergeNodes, 0);
    EXPECT_EQ(s.depth, g.size() - 1);
}

TEST(Stats, ActWeightRatioSeparatesRegimes)
{
    // SRCNN is activation-dominated; VGG16 is weight-dominated.
    GraphStats sr = computeStats(buildSRCNN());
    GraphStats vgg = computeStats(buildVGG16());
    EXPECT_GT(sr.actWeightRatio(), 10.0);
    EXPECT_LT(vgg.actWeightRatio(), 1.0);
}

TEST(Stats, StrMentionsEverything)
{
    GraphStats s = computeStats(buildGoogleNet());
    std::string text = s.str();
    EXPECT_NE(text.find("nodes="), std::string::npos);
    EXPECT_NE(text.find("MACs="), std::string::npos);
    EXPECT_NE(text.find("act/wgt"), std::string::npos);
}

TEST(Stats, WidthReflectsInceptionParallelism)
{
    GraphStats s = computeStats(buildGoogleNet());
    EXPECT_GE(s.maxWidth, 4); // four parallel branches
}
