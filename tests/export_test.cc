/**
 * @file
 * Tests for the export layer: the JSON writer, DOT rendering, and
 * the result/scheme/partition serializers.
 */

#include <gtest/gtest.h>

#include "core/serialize.h"
#include "graph/dot.h"
#include "models/models.h"
#include "tileflow/footprint.h"
#include "util/json.h"
#include "util/logging.h"

using namespace cocco;

// --- JsonWriter -------------------------------------------------------------

TEST(Json, EmptyObject)
{
    JsonWriter w;
    w.beginObject().endObject();
    EXPECT_EQ(w.str(), "{}");
}

TEST(Json, EmptyArray)
{
    JsonWriter w;
    w.beginArray().endArray();
    EXPECT_EQ(w.str(), "[]");
}

TEST(Json, ScalarFields)
{
    JsonWriter w;
    w.beginObject()
        .field("a", 1)
        .field("b", "x")
        .field("c", true)
        .field("d", 2.5)
        .endObject();
    EXPECT_EQ(w.str(), "{\"a\":1,\"b\":\"x\",\"c\":true,\"d\":2.5}");
}

TEST(Json, NestedStructures)
{
    JsonWriter w;
    w.beginObject();
    w.key("list").beginArray().value(1).value(2).endArray();
    w.key("obj").beginObject().field("k", "v").endObject();
    w.endObject();
    EXPECT_EQ(w.str(), "{\"list\":[1,2],\"obj\":{\"k\":\"v\"}}");
}

TEST(Json, ArrayOfObjects)
{
    JsonWriter w;
    w.beginArray();
    w.beginObject().field("i", 0).endObject();
    w.beginObject().field("i", 1).endObject();
    w.endArray();
    EXPECT_EQ(w.str(), "[{\"i\":0},{\"i\":1}]");
}

TEST(Json, EscapesSpecialCharacters)
{
    EXPECT_EQ(JsonWriter::escape("a\"b"), "a\\\"b");
    EXPECT_EQ(JsonWriter::escape("a\\b"), "a\\\\b");
    EXPECT_EQ(JsonWriter::escape("a\nb"), "a\\nb");
    EXPECT_EQ(JsonWriter::escape("a\tb"), "a\\tb");
    EXPECT_EQ(JsonWriter::escape(std::string(1, '\x01')), "\\u0001");
}

TEST(Json, NonFiniteDoublesBecomeNull)
{
    JsonWriter w;
    w.beginArray().value(1.0 / 0.0).endArray();
    EXPECT_EQ(w.str(), "[null]");
}

TEST(JsonDeath, UnbalancedNesting)
{
    JsonWriter w;
    w.beginObject();
    EXPECT_DEATH(w.endArray(), "unbalanced");
}

TEST(JsonDeath, KeyOutsideObject)
{
    JsonWriter w;
    w.beginArray();
    EXPECT_DEATH(w.key("k"), "key outside object");
}

TEST(JsonDeath, UnclosedDocument)
{
    JsonWriter w;
    w.beginObject();
    EXPECT_DEATH(w.str(), "not closed");
}

// --- DOT ---------------------------------------------------------------------

TEST(Dot, PlainGraphContainsNodesAndEdges)
{
    Graph g = buildVGG16();
    std::string dot = toDot(g);
    EXPECT_NE(dot.find("digraph \"VGG16\""), std::string::npos);
    EXPECT_NE(dot.find("conv1_1"), std::string::npos);
    EXPECT_NE(dot.find("n0 -> n1;"), std::string::npos);
    // Every node is declared.
    for (NodeId v = 0; v < g.size(); ++v)
        EXPECT_NE(dot.find(strprintf("n%d [", v)), std::string::npos);
}

TEST(Dot, PartitionedGraphHasClusters)
{
    Graph g = buildVGG16();
    Partition p = Partition::fixedRuns(g, 4);
    p.canonicalize(g);
    std::string dot = toDot(g, p);
    EXPECT_NE(dot.find("cluster_0"), std::string::npos);
    EXPECT_NE(dot.find("cluster_1"), std::string::npos);
    EXPECT_NE(dot.find("fillcolor"), std::string::npos);
}

TEST(DotDeath, PartitionSizeMismatch)
{
    Graph g = buildVGG16();
    Partition p;
    p.block = {0, 1};
    EXPECT_DEATH(toDot(g, p), "does not cover");
}

// --- Serializers ---------------------------------------------------------------

TEST(Serialize, PartitionJsonListsBlocks)
{
    Graph g = buildVGG16();
    Partition p = Partition::fixedRuns(g, 6);
    p.canonicalize(g);
    std::string json = partitionToJson(g, p);
    EXPECT_NE(json.find("\"model\":\"VGG16\""), std::string::npos);
    EXPECT_NE(json.find("\"subgraphs\":[["), std::string::npos);
    EXPECT_NE(json.find("conv1_1"), std::string::npos);
}

TEST(Serialize, SchemeJsonHasPerNodeFields)
{
    Graph g = buildVGG16();
    ExecutionScheme s = bestScheme(g, {1, 2});
    std::string json = schemeToJson(g, s);
    EXPECT_NE(json.find("\"out_tile\""), std::string::npos);
    EXPECT_NE(json.find("\"delta_h\""), std::string::npos);
    EXPECT_NE(json.find("\"upd_num\""), std::string::npos);
    EXPECT_NE(json.find("\"external\":true"), std::string::npos);
}

TEST(Serialize, ResultJsonRoundsTrip)
{
    Graph g = buildGoogleNet();
    CoccoFramework cocco(g, AcceleratorConfig{});
    GaOptions o;
    o.population = 20;
    o.sampleBudget = 100;
    o.seed = 3;
    CoccoResult r = cocco.coExplore(BufferStyle::Shared, o);
    std::string json = resultToJson(g, r);
    EXPECT_NE(json.find("\"buffer\":{"), std::string::npos);
    EXPECT_NE(json.find("\"style\":\"shared\""), std::string::npos);
    EXPECT_NE(json.find("\"ema_bytes\""), std::string::npos);
    EXPECT_NE(json.find("\"objective\""), std::string::npos);
    // Balanced braces as a cheap well-formedness proxy.
    int depth = 0;
    bool in_str = false;
    char prev = 0;
    for (char c : json) {
        if (c == '"' && prev != '\\')
            in_str = !in_str;
        if (!in_str) {
            if (c == '{' || c == '[')
                ++depth;
            if (c == '}' || c == ']')
                --depth;
        }
        EXPECT_GE(depth, 0);
        prev = c;
    }
    EXPECT_EQ(depth, 0);
}
