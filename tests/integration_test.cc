/**
 * @file
 * Cross-module integration and fuzz tests: end-to-end pipelines over
 * synthetic random DAGs (generator -> tile flow -> region allocation
 * -> cost model -> partition search), and consistency relations
 * between the layers that unit tests cannot see.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>

#include "core/cocco.h"
#include "graph/algorithms.h"
#include "core/serialize.h"
#include "mem/region_manager.h"
#include "models/random_dag.h"
#include "partition/dp.h"
#include "partition/enumeration.h"
#include "partition/greedy.h"
#include "partition/repair.h"
#include "tileflow/footprint.h"
#include "tileflow/schedule.h"
#include "util/logging.h"

using namespace cocco;

namespace {

BufferConfig
mediumShared()
{
    BufferConfig c;
    c.style = BufferStyle::Shared;
    c.sharedBytes = 512 * 1024;
    return c;
}

} // namespace

// --- Random-DAG generator sanity -------------------------------------------

class RandomDagFuzz : public ::testing::TestWithParam<uint64_t>
{
  protected:
    Graph g_ = buildRandomDag(GetParam());
};

TEST_P(RandomDagFuzz, GeneratorProducesSaneGraphs)
{
    EXPECT_GE(g_.size(), 25);
    EXPECT_EQ(g_.inputs().size(), 1u);
    for (NodeId v = 0; v < g_.size(); ++v)
        for (NodeId u : g_.preds(v))
            EXPECT_LT(u, v);
}

TEST_P(RandomDagFuzz, TileFlowSucceedsOnEveryWindow)
{
    for (NodeId v = 1; v + 3 < g_.size(); v += 3) {
        std::vector<NodeId> sub{v, v + 1, v + 2};
        ExecutionScheme s = bestScheme(g_, sub);
        EXPECT_GT(s.actFootprintBytes, 0);
        EXPECT_TRUE(s.updConsistent);
        for (const NodeScheme &ns : s.nodes) {
            EXPECT_GE(ns.xH, ns.deltaH);
            EXPECT_GE(ns.updNum, 1);
        }
    }
}

TEST_P(RandomDagFuzz, GreedyDpAndGaAllValidAndFeasible)
{
    AcceleratorConfig accel;
    CostModel model(g_, accel);
    BufferConfig buf = mediumShared();

    Partition greedy = greedyPartition(g_, model, buf, Metric::EMA);
    Partition dp = dpPartition(g_, model, buf, Metric::EMA);
    EXPECT_TRUE(greedy.valid(g_));
    EXPECT_TRUE(dp.valid(g_));
    EXPECT_TRUE(model.partitionCost(greedy, buf).feasible);
    EXPECT_TRUE(model.partitionCost(dp, buf).feasible);

    CoccoFramework cocco(g_, accel);
    GaOptions o;
    o.population = 20;
    o.sampleBudget = 200;
    o.metric = Metric::EMA;
    o.seed = GetParam();
    CoccoResult ga = cocco.partitionOnly(buf, o, {greedy, dp});
    EXPECT_TRUE(ga.partition.valid(g_));
    // Seeded GA can only improve on its seeds.
    int64_t best_seed =
        std::min(model.partitionCost(greedy, buf).emaBytes,
                 model.partitionCost(dp, buf).emaBytes);
    EXPECT_LE(ga.cost.emaBytes, best_seed);
}

TEST_P(RandomDagFuzz, EnumerationBoundsHeuristicsWhenComplete)
{
    RandomDagOptions small;
    small.convNodes = 10;
    Graph g = buildRandomDag(GetParam(), small);
    AcceleratorConfig accel;
    CostModel model(g, accel);
    BufferConfig buf = mediumShared();

    EnumerationOptions eopts;
    eopts.stateBudget = 40000;
    eopts.candidateBudget = 400000;
    EnumerationResult en =
        enumeratePartition(g, model, buf, Metric::EMA, eopts);
    if (!en.complete)
        GTEST_SKIP() << "budget exceeded on this seed";

    Partition greedy = greedyPartition(g, model, buf, Metric::EMA);
    Partition dp = dpPartition(g, model, buf, Metric::EMA);
    EXPECT_LE(en.cost,
              model.partitionCost(greedy, buf).emaBytes + 1e-6);
    EXPECT_LE(en.cost, model.partitionCost(dp, buf).emaBytes + 1e-6);
    EXPECT_TRUE(en.best.valid(g));
}

TEST_P(RandomDagFuzz, SchemeRegionsAllocateWhenProfiled)
{
    AcceleratorConfig accel;
    CostModel model(g_, accel);
    RegionManager mgr(accel.maxRegions);
    for (NodeId v = 1; v + 2 < g_.size(); v += 5) {
        std::vector<NodeId> sub{v, v + 1};
        ExecutionScheme s = bestScheme(g_, sub);
        RegionAllocation alloc = mgr.allocate(s, s.actFootprintBytes);
        EXPECT_TRUE(alloc.fits);
        EXPECT_EQ(alloc.usedBytes, s.actFootprintBytes);
    }
}

TEST_P(RandomDagFuzz, SchedulesRespectDependencies)
{
    std::vector<NodeId> sub;
    for (NodeId v = 1; v < std::min(g_.size(), 8); ++v)
        sub.push_back(v);
    if (!isWeaklyConnected(g_, sub))
        GTEST_SKIP();
    ExecutionScheme s = bestScheme(g_, sub);
    if (!s.updConsistent)
        GTEST_SKIP();
    ElementarySchedule op = buildElementarySchedule(g_, s, 0);
    EXPECT_FALSE(op.steps.empty());
    // First updates appear in topological order per slot.
    std::vector<size_t> first(g_.size(), SIZE_MAX);
    for (size_t i = 0; i < op.steps.size(); ++i)
        first[op.steps[i].node] =
            std::min(first[op.steps[i].node], i);
    for (NodeId v : sub)
        for (NodeId u : g_.preds(v))
            if (first[u] != SIZE_MAX) {
                EXPECT_LT(first[u], first[v]);
            }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDagFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// --- End-to-end consistency ---------------------------------------------------

TEST(Integration, EndToEndResNetPipeline)
{
    Graph g = buildResNet50();
    AcceleratorConfig accel;
    CoccoFramework cocco(g, accel);

    GaOptions o;
    o.population = 40;
    o.sampleBudget = 800;
    o.seed = 17;
    CoccoResult r = cocco.coExplore(BufferStyle::Shared, o);
    ASSERT_TRUE(r.cost.feasible);

    // Every recommended subgraph's scheme fits the recommended buffer
    // together with its resident weights.
    CostModel &model = cocco.model();
    for (const auto &blk : r.partition.blocks()) {
        EXPECT_TRUE(model.fits(blk, r.buffer));
        if (blk.size() > 1) {
            const SubgraphProfile &p = model.profile(blk);
            EXPECT_LE(p.actFootprintBytes + p.weightBytes,
                      r.buffer.sharedBytes);
            EXPECT_LE(p.numRegions, accel.maxRegions);
        }
    }

    // The serialized result is consistent with the returned struct.
    std::string json = resultToJson(g, r);
    EXPECT_NE(json.find(strprintf("\"total_bytes\":%lld",
                                  static_cast<long long>(
                                      r.buffer.totalBytes()))),
              std::string::npos);
}

TEST(Integration, ObjectiveDecomposition)
{
    // objective == BUF + alpha * metric, re-derived through the public
    // pieces (guards against drift between search and cost model).
    Graph g = buildGoogleNet();
    AcceleratorConfig accel;
    CoccoFramework cocco(g, accel);
    GaOptions o;
    o.population = 20;
    o.sampleBudget = 300;
    o.alpha = 0.002;
    o.seed = 23;
    CoccoResult r = cocco.coExplore(BufferStyle::Shared, o);
    GraphCost again = cocco.model().partitionCost(r.partition, r.buffer);
    EXPECT_DOUBLE_EQ(r.objective,
                     objective(again, r.buffer, o.alpha, o.metric));
}

TEST(Integration, FusionNeverIncreasesMinEma)
{
    // Merging two adjacent feasible blocks can only reduce (or keep)
    // the EMA metric — the monotonicity the greedy algorithm exploits.
    Graph g = buildRandomDag(42);
    AcceleratorConfig accel;
    CostModel model(g, accel);
    BufferConfig buf;
    buf.style = BufferStyle::Shared;
    buf.sharedBytes = 16 * 1024 * 1024; // ample

    for (NodeId v = 1; v + 1 < g.size(); v += 2) {
        bool adjacent = false;
        for (NodeId w : g.succs(v))
            if (w == v + 1)
                adjacent = true;
        if (!adjacent)
            continue;
        int64_t split = model.subgraphCost({v}, buf).emaBytes +
                        model.subgraphCost({v + 1}, buf).emaBytes;
        int64_t fused = model.subgraphCost({v, v + 1}, buf).emaBytes;
        EXPECT_LE(fused, split);
    }
}

TEST(Integration, SharedBeatsSeparateAtEqualTotal)
{
    // The Table 2 observation: a shared buffer of the same total size
    // is at least as good (never worse) for feasibility.
    Graph g = buildGoogleNet();
    AcceleratorConfig accel;
    CostModel model(g, accel);

    BufferConfig sep;
    sep.style = BufferStyle::Separate;
    sep.actBytes = 256 * 1024;
    sep.weightBytes = 256 * 1024;
    BufferConfig shr;
    shr.style = BufferStyle::Shared;
    shr.sharedBytes = 512 * 1024;

    int fits_sep = 0, fits_shr = 0;
    for (NodeId v = 1; v + 2 < g.size(); v += 2) {
        std::vector<NodeId> sub{v, v + 1, v + 2};
        if (!isWeaklyConnected(g, sub))
            continue;
        fits_sep += model.fits(sub, sep);
        fits_shr += model.fits(sub, shr);
    }
    EXPECT_GE(fits_shr, fits_sep);
}
