/**
 * @file
 * Tests for the racing searcher portfolio (search/portfolio.h) and
 * the first-class Pareto frontier mode (search/pareto.h
 * ParetoArchive): archive invariants, the determinism contract
 * (fixed seed + deterministic race -> results independent of the
 * thread budget, racers bit-identical to solo runs), mid-race
 * cancellation, and checkpoint/resume of an in-flight race.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>

#include "core/cocco.h"
#include "core/serialize.h"
#include "models/random_dag.h"
#include "search/checkpoint.h"
#include "search/pareto.h"
#include "serve/job_manager.h"
#include "serve/service.h"
#include "util/json.h"

using namespace cocco;

namespace {

Graph
smallGraph()
{
    RandomDagOptions o;
    o.convNodes = 18;
    return buildRandomDag(33, o);
}

/** A two-racer spec small enough for the sanitizer lane. The race
 *  knobs put the first cull decision inside the budget. */
SearchSpec
makeRaceSpec(int64_t budget)
{
    SearchSpec spec;
    spec.algo = "portfolio";
    spec.style = BufferStyle::Shared;
    spec.eval.sampleBudget = budget;
    spec.eval.seed = 11;
    spec.eval.threads = 1;
    spec.eval.cacheEnabled = false;
    spec.ga.population = 16;
    spec.portfolio.racers = {"ga", "sa"};
    spec.portfolio.deterministicRace = true;
    spec.portfolio.checkEvals = 200;
    spec.portfolio.warmupEvals = 400;
    return spec;
}

/** Observer that requests cancellation once @p after samples have
 *  been folded by any racer (served at the next batch boundary). */
class CancelAfter : public SearchObserver
{
  public:
    explicit CancelAfter(int64_t after) : after_(after) {}

    void
    onBatchDone(int64_t samples, double) override
    {
        if (samples >= after_)
            hit_.store(true, std::memory_order_relaxed);
    }

    bool
    cancelled() override
    {
        return hit_.load(std::memory_order_relaxed);
    }

  private:
    int64_t after_;
    std::atomic<bool> hit_{false};
};

/** Everything a portfolio run reports, compared exactly. */
void
expectSameRace(const CoccoResult &a, const CoccoResult &b)
{
    EXPECT_EQ(a.objective, b.objective);
    EXPECT_EQ(a.samples, b.samples);
    EXPECT_EQ(a.buffer.totalBytes(), b.buffer.totalBytes());
    ASSERT_EQ(a.trace.size(), b.trace.size());
    for (size_t i = 0; i < a.trace.size(); ++i) {
        EXPECT_EQ(a.trace[i].sample, b.trace[i].sample);
        EXPECT_EQ(a.trace[i].bestCost, b.trace[i].bestCost) << "i=" << i;
    }
    ASSERT_EQ(a.racers.size(), b.racers.size());
    for (size_t i = 0; i < a.racers.size(); ++i) {
        EXPECT_EQ(a.racers[i].algo, b.racers[i].algo);
        EXPECT_EQ(a.racers[i].samples, b.racers[i].samples) << "i=" << i;
        EXPECT_EQ(a.racers[i].bestCost, b.racers[i].bestCost) << "i=" << i;
        EXPECT_EQ(a.racers[i].improvements, b.racers[i].improvements);
        EXPECT_EQ(a.racers[i].culled, b.racers[i].culled) << "i=" << i;
        EXPECT_EQ(a.racers[i].winner, b.racers[i].winner) << "i=" << i;
    }
}

// --- Pareto archive invariants ------------------------------------------

ParetoEntry
entry(int64_t buf, double en, double lat)
{
    ParetoEntry e;
    e.bufferBytes = buf;
    e.energyPj = en;
    e.latencyCycles = lat;
    e.metric = en;
    e.sample = 0;
    return e;
}

TEST(ParetoArchive, DominatedOffersAreRejected)
{
    ParetoArchive a;
    EXPECT_TRUE(a.offer(entry(100, 10.0, 10.0)));
    // Dominated in every objective.
    EXPECT_FALSE(a.offer(entry(200, 20.0, 20.0)));
    // Exact duplicate.
    EXPECT_FALSE(a.offer(entry(100, 10.0, 10.0)));
    // Dominates the incumbent: replaces it.
    EXPECT_TRUE(a.offer(entry(50, 5.0, 5.0)));
    EXPECT_EQ(a.size(), 1u);
    EXPECT_EQ(a.entries()[0].bufferBytes, 50);
    EXPECT_EQ(a.offered(), 4);
}

TEST(ParetoArchive, TradeOffsCoexistSortedByBuffer)
{
    ParetoArchive a;
    EXPECT_TRUE(a.offer(entry(300, 1.0, 9.0)));
    EXPECT_TRUE(a.offer(entry(100, 3.0, 7.0)));
    EXPECT_TRUE(a.offer(entry(200, 2.0, 8.0)));
    ASSERT_EQ(a.size(), 3u);
    EXPECT_EQ(a.entries()[0].bufferBytes, 100);
    EXPECT_EQ(a.entries()[1].bufferBytes, 200);
    EXPECT_EQ(a.entries()[2].bufferBytes, 300);
}

TEST(ParetoArchive, NoKeptEntryDominatesAnother)
{
    // A deterministic pseudo-random stream of offers; after all of
    // them the kept set must be mutually non-dominated.
    ParetoArchive a(64);
    uint64_t x = 12345;
    auto next = [&x]() {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        return (x >> 33) % 1000;
    };
    for (int i = 0; i < 500; ++i)
        a.offer(entry(static_cast<int64_t>(next()) + 1,
                      static_cast<double>(next()) + 1.0,
                      static_cast<double>(next()) + 1.0));
    const std::vector<ParetoEntry> &kept = a.entries();
    EXPECT_LE(kept.size(), 64u);
    for (size_t i = 0; i < kept.size(); ++i)
        for (size_t j = 0; j < kept.size(); ++j) {
            if (i == j)
                continue;
            bool le = kept[i].bufferBytes <= kept[j].bufferBytes &&
                      kept[i].energyPj <= kept[j].energyPj &&
                      kept[i].latencyCycles <= kept[j].latencyCycles;
            bool lt = kept[i].bufferBytes < kept[j].bufferBytes ||
                      kept[i].energyPj < kept[j].energyPj ||
                      kept[i].latencyCycles < kept[j].latencyCycles;
            EXPECT_FALSE(le && lt)
                << "entry " << i << " dominates entry " << j;
        }
}

TEST(ParetoArchive, TruncationKeepsCapacityAndExtremes)
{
    ParetoArchive a(8);
    // A clean 2D trade-off line: every point is non-dominated, so
    // truncation (not dominance) must do the limiting.
    for (int i = 0; i < 32; ++i)
        a.offer(entry(100 + i, 100.0 - i, 50.0));
    EXPECT_EQ(a.size(), 8u);
    // Crowding-distance truncation preserves the extremes.
    EXPECT_EQ(a.entries().front().bufferBytes, 100);
    EXPECT_EQ(a.entries().back().bufferBytes, 131);
}

TEST(ParetoArchive, HypervolumeSanity)
{
    ParetoArchive empty;
    EXPECT_EQ(empty.hypervolume(), 0.0);

    ParetoArchive one;
    one.offer(entry(100, 10.0, 10.0));
    EXPECT_GT(one.hypervolume(), 0.0);

    // A frontier spanning the objective box beats a single point.
    ParetoArchive line;
    for (int i = 0; i < 10; ++i)
        line.offer(entry(100 + 10 * i, 100.0 - 10.0 * i, 50.0));
    EXPECT_GT(line.hypervolume(), 0.0);
    EXPECT_LE(line.hypervolume(), 1.05 * 1.05 * 1.05);
}

TEST(ParetoArchive, MergeMatchesSequentialOffers)
{
    ParetoArchive a, b, both;
    for (int i = 0; i < 10; ++i) {
        ParetoEntry e = entry(100 + 7 * i, 90.0 - 3.0 * i, 40.0 + i);
        a.offer(e);
        both.offer(e);
    }
    for (int i = 0; i < 10; ++i) {
        ParetoEntry e = entry(90 + 9 * i, 95.0 - 4.0 * i, 45.0 + i);
        b.offer(e);
        both.offer(e);
    }
    a.merge(b);
    ASSERT_EQ(a.size(), both.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.entries()[i].bufferBytes, both.entries()[i].bufferBytes);
        EXPECT_EQ(a.entries()[i].energyPj, both.entries()[i].energyPj);
    }
}

// --- Portfolio determinism ----------------------------------------------

TEST(Portfolio, DeterministicAcrossThreadBudgets)
{
    Graph g = smallGraph();
    AcceleratorConfig accel;
    SearchSpec spec = makeRaceSpec(1200);

    CoccoResult t1 = CoccoFramework(g, accel).explore(spec);
    SearchSpec wide = spec;
    wide.eval.threads = 3;
    CoccoResult t3 = CoccoFramework(g, accel).explore(wide);

    ASSERT_EQ(t1.racers.size(), 2u);
    expectSameRace(t1, t3);
}

TEST(Portfolio, RacersAreBitIdenticalToSoloRuns)
{
    Graph g = smallGraph();
    AcceleratorConfig accel;
    SearchSpec spec = makeRaceSpec(1200);
    CoccoResult race = CoccoFramework(g, accel).explore(spec);
    ASSERT_EQ(race.racers.size(), 2u);

    // Every racer that ran to its budget must match the solo run of
    // the same algorithm exactly (same seed, same shared eval core).
    for (const RacerStats &r : race.racers) {
        if (r.culled)
            continue;
        SearchSpec solo = spec;
        solo.algo = r.algo;
        CoccoResult s = CoccoFramework(g, accel).explore(solo);
        EXPECT_EQ(s.samples, r.samples) << r.algo;
        EXPECT_EQ(s.objective, r.bestCost) << r.algo;
    }

    // The winner's result is the portfolio's result.
    bool sawWinner = false;
    for (const RacerStats &r : race.racers)
        if (r.winner) {
            sawWinner = true;
            EXPECT_EQ(r.bestCost, race.objective);
            EXPECT_FALSE(r.culled);
        }
    EXPECT_TRUE(sawWinner);
}

TEST(Portfolio, SharedCacheChangesNoResults)
{
    Graph g = smallGraph();
    AcceleratorConfig accel;
    SearchSpec spec = makeRaceSpec(800);
    CoccoResult cold = CoccoFramework(g, accel).explore(spec);

    SearchSpec cached = spec;
    cached.eval.cacheEnabled = true;
    CoccoResult warm = CoccoFramework(g, accel).explore(cached);
    EXPECT_GT(warm.cacheStats.hits + warm.cacheStats.misses, 0u);
    expectSameRace(cold, warm);
}

TEST(Portfolio, MidRaceCancelStopsEveryRacer)
{
    Graph g = smallGraph();
    AcceleratorConfig accel;
    SearchSpec spec = makeRaceSpec(100000);
    CancelAfter cancel(400);
    spec.eval.observer = &cancel;
    CoccoResult r = CoccoFramework(g, accel).explore(spec);
    EXPECT_EQ(r.stop, StopReason::Cancelled);
    ASSERT_EQ(r.racers.size(), 2u);
    for (const RacerStats &rs : r.racers)
        EXPECT_LT(rs.samples, 100000) << rs.algo;
}

// --- Portfolio checkpoint/resume ----------------------------------------

TEST(Portfolio, CheckpointRoundTripsThroughTheFile)
{
    Graph g = smallGraph();
    AcceleratorConfig accel;
    SearchSpec spec = makeRaceSpec(100000);
    CancelAfter cancel(400);
    spec.eval.observer = &cancel;

    SearchCheckpoint saved;
    bool haveSaved = false;
    CheckpointHooks hooks;
    hooks.save = [&](const SearchCheckpoint &c) {
        saved = c;
        haveSaved = true;
    };
    spec.eval.checkpoint = &hooks;
    CoccoResult partial = CoccoFramework(g, accel).explore(spec);
    EXPECT_EQ(partial.stop, StopReason::Cancelled);
    ASSERT_TRUE(haveSaved);
    EXPECT_EQ(saved.algo, "portfolio");
    ASSERT_TRUE(saved.hasPortfolio);
    ASSERT_EQ(saved.racers.size(), 2u);
    ASSERT_EQ(saved.racerState.size(), 2u);
    EXPECT_EQ(saved.racers[0].algo, "ga");
    EXPECT_EQ(saved.racers[1].algo, "sa");

    std::string path = "portfolio_test_ck.tmp";
    ASSERT_TRUE(saveCheckpoint(saved, path));
    SearchCheckpoint loaded;
    std::string err;
    ASSERT_TRUE(loadCheckpoint(path, &loaded, &err)) << err;
    std::remove(path.c_str());

    EXPECT_EQ(loaded.algo, saved.algo);
    EXPECT_EQ(loaded.fence, saved.fence);
    EXPECT_TRUE(loaded.hasPortfolio);
    ASSERT_EQ(loaded.racers.size(), saved.racers.size());
    ASSERT_EQ(loaded.racerState, saved.racerState);
    for (size_t i = 0; i < loaded.racers.size(); ++i) {
        EXPECT_EQ(loaded.racers[i].algo, saved.racers[i].algo);
        EXPECT_EQ(loaded.racers[i].fence, saved.racers[i].fence);
        EXPECT_EQ(loaded.racers[i].samples, saved.racers[i].samples);
        EXPECT_EQ(loaded.racers[i].bestCost, saved.racers[i].bestCost);
        EXPECT_EQ(loaded.racers[i].trace.size(),
                  saved.racers[i].trace.size());
    }
}

TEST(Portfolio, ResumedRaceFinishesLikeTheUninterruptedOne)
{
    Graph g = smallGraph();
    AcceleratorConfig accel;
    SearchSpec spec = makeRaceSpec(1200);
    CoccoResult straight = CoccoFramework(g, accel).explore(spec);

    // Cancel mid-race; saveOnStop persists the boundary state.
    SearchCheckpoint saved;
    bool haveSaved = false;
    CancelAfter cancel(400);
    CheckpointHooks saveHooks;
    saveHooks.save = [&](const SearchCheckpoint &c) {
        saved = c;
        haveSaved = true;
    };
    SearchSpec interrupted = spec;
    interrupted.eval.observer = &cancel;
    interrupted.eval.checkpoint = &saveHooks;
    CoccoResult partial = CoccoFramework(g, accel).explore(interrupted);
    EXPECT_EQ(partial.stop, StopReason::Cancelled);
    ASSERT_TRUE(haveSaved);

    // Resume at a different thread budget: same final race.
    CheckpointHooks resumeHooks;
    resumeHooks.resume = &saved;
    SearchSpec resumedSpec = spec;
    resumedSpec.eval.threads = 2;
    resumedSpec.eval.checkpoint = &resumeHooks;
    CoccoResult resumed = CoccoFramework(g, accel).explore(resumedSpec);
    EXPECT_EQ(resumed.stop, StopReason::BudgetExhausted);
    expectSameRace(straight, resumed);
}

TEST(Portfolio, CorruptRacerSectionIsRejected)
{
    SearchCheckpoint c;
    c.algo = "portfolio";
    c.fence = 0x1234;
    c.seed = 1;
    c.hasPortfolio = true;
    c.racers.resize(1);
    c.racers[0].algo = "ga";
    c.racerState = {SearchCheckpoint::kRacerActive};

    std::string path = "portfolio_test_corrupt.tmp";
    ASSERT_TRUE(saveCheckpoint(c, path));
    // Flip the racer-state line to an out-of-range value.
    std::string text;
    {
        std::FILE *f = std::fopen(path.c_str(), "r");
        ASSERT_NE(f, nullptr);
        char buf[4096];
        size_t n;
        while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
            text.append(buf, n);
        std::fclose(f);
    }
    size_t pos = text.find("q 0");
    ASSERT_NE(pos, std::string::npos);
    text.replace(pos, 3, "q 9");
    {
        std::FILE *f = std::fopen(path.c_str(), "w");
        ASSERT_NE(f, nullptr);
        std::fwrite(text.data(), 1, text.size(), f);
        std::fclose(f);
    }
    SearchCheckpoint loaded;
    std::string err;
    EXPECT_FALSE(loadCheckpoint(path, &loaded, &err));
    EXPECT_NE(err.find("racer state"), std::string::npos) << err;
    std::remove(path.c_str());
}

// --- Serve path ---------------------------------------------------------

TEST(Portfolio, ServeCancelsARunningRaceAndReportsRacers)
{
    JobManagerOptions opts;
    opts.workers = 1;
    opts.threadBudget = 2;
    JobManager manager(opts);

    // A budget far too large to finish; cancellation must end the
    // whole race, not just the leading racer.
    SearchSpec spec;
    std::string err;
    ASSERT_TRUE(parseRunSpecText(
        R"({"algo":"portfolio","model":"GoogleNet","samples":50000000,
            "seed":3,"threads":2,
            "portfolio":{"racers":["ga","sa"],"checkEvals":500}})",
        &spec, &err))
        << err;
    int64_t id = manager.submit(spec, "t", &err);
    ASSERT_GT(id, 0) << err;

    // Let it make some progress before pulling the plug.
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::seconds(30);
    while (manager.status(id).progressSamples < 1000 &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_TRUE(manager.cancel(id));
    ASSERT_TRUE(manager.wait(id, 30.0));
    EXPECT_EQ(manager.status(id).state, JobState::Cancelled);

    // The terminal metrics document carries the portfolio block.
    std::string doc = manager.metricsJson(id);
    ASSERT_FALSE(doc.empty());
    JsonValue v;
    ASSERT_TRUE(parseJson(doc, &v, &err)) << err;
    const JsonValue *run = &v.find("runs")->array()[0];
    const JsonValue *pf = run->find("portfolio");
    ASSERT_NE(pf, nullptr);
    ASSERT_TRUE(pf->find("racers")->isArray());
    EXPECT_EQ(pf->find("racers")->array().size(), 2u);

    // Degenerate portfolio specs are shed at admission.
    SearchSpec bad = spec;
    bad.portfolio.racers = {"portfolio"};
    EXPECT_EQ(manager.submit(bad, "t", &err), -1);
    EXPECT_NE(err.find("race itself"), std::string::npos) << err;
    bad.portfolio.racers = {"ga", "nope"};
    EXPECT_EQ(manager.submit(bad, "t", &err), -1);
    bad.portfolio.racers = {"ga"};
    bad.portfolio.checkEvals = 0;
    EXPECT_EQ(manager.submit(bad, "t", &err), -1);
}

// --- Pareto mode end-to-end ---------------------------------------------

TEST(ParetoMode, ExploreProducesANonDominatedFrontier)
{
    // A registry model, not the tiny random DAG: real models carry a
    // genuine buffer/energy/latency trade-off (the random DAG's
    // frontier can collapse to one point).
    Graph g = buildModel("ResNet50");
    AcceleratorConfig accel;
    SearchSpec spec;
    spec.algo = "ga";
    spec.style = BufferStyle::Shared;
    spec.eval.sampleBudget = 600;
    spec.eval.seed = 5;
    spec.eval.cacheEnabled = false;
    spec.ga.population = 16;
    spec.paretoMode = true;
    spec.eval.coExplore = true;

    CoccoResult r = CoccoFramework(g, accel).explore(spec);
    ASSERT_GE(r.frontier.size(), 3u);
    EXPECT_GT(r.hypervolume, 0.0);
    // Mutually non-dominated and buffer-sorted.
    for (size_t i = 1; i < r.frontier.size(); ++i)
        EXPECT_LE(r.frontier[i - 1].bufferBytes, r.frontier[i].bufferBytes);
    for (size_t i = 0; i < r.frontier.size(); ++i)
        for (size_t j = 0; j < r.frontier.size(); ++j) {
            if (i == j)
                continue;
            bool le =
                r.frontier[i].bufferBytes <= r.frontier[j].bufferBytes &&
                r.frontier[i].energyPj <= r.frontier[j].energyPj &&
                r.frontier[i].latencyCycles <= r.frontier[j].latencyCycles;
            bool lt =
                r.frontier[i].bufferBytes < r.frontier[j].bufferBytes ||
                r.frontier[i].energyPj < r.frontier[j].energyPj ||
                r.frontier[i].latencyCycles < r.frontier[j].latencyCycles;
            EXPECT_FALSE(le && lt) << i << " dominates " << j;
        }
    // Pareto mode never changes the search itself.
    SearchSpec plain = spec;
    plain.paretoMode = false;
    CoccoResult p = CoccoFramework(g, accel).explore(plain);
    EXPECT_EQ(p.objective, r.objective);
    EXPECT_EQ(p.samples, r.samples);
}

TEST(ParetoMode, PortfolioMergesPerRacerArchives)
{
    Graph g = buildModel("ResNet50");
    AcceleratorConfig accel;
    SearchSpec spec = makeRaceSpec(800);
    spec.paretoMode = true;
    CoccoResult r = CoccoFramework(g, accel).explore(spec);
    ASSERT_EQ(r.racers.size(), 2u);
    EXPECT_GE(r.frontier.size(), 3u);
    EXPECT_GT(r.hypervolume, 0.0);
}

// --- Spec JSON ----------------------------------------------------------

TEST(PortfolioSpec, JsonRoundTrip)
{
    const char *doc = R"({
        "workload": { "model": "ResNet50" },
        "algo": "portfolio",
        "mode": "pareto",
        "samples": 500,
        "portfolio": { "racers": ["sa", "ga"],
                       "deterministicRace": true,
                       "checkEvals": 250, "warmupEvals": 300 }
    })";
    JsonValue v;
    std::string err;
    ASSERT_TRUE(parseJson(doc, &v, &err)) << err;
    SearchSpec spec;
    ASSERT_TRUE(searchSpecFromJson(v, &spec, &err)) << err;
    EXPECT_EQ(spec.algo, "portfolio");
    EXPECT_TRUE(spec.paretoMode);
    EXPECT_TRUE(spec.eval.coExplore);
    ASSERT_EQ(spec.portfolio.racers.size(), 2u);
    EXPECT_EQ(spec.portfolio.racers[0], "sa");
    EXPECT_EQ(spec.portfolio.racers[1], "ga");
    EXPECT_TRUE(spec.portfolio.deterministicRace);
    EXPECT_EQ(spec.portfolio.checkEvals, 250);
    EXPECT_EQ(spec.portfolio.warmupEvals, 300);
}

TEST(PortfolioSpec, BadPortfolioBlocksAreErrors)
{
    auto rejects = [](const char *doc) {
        JsonValue v;
        std::string err;
        ASSERT_TRUE(parseJson(doc, &v, &err)) << err;
        SearchSpec spec;
        EXPECT_FALSE(searchSpecFromJson(v, &spec, &err)) << doc;
        EXPECT_FALSE(err.empty());
    };
    rejects(R"({"portfolio": {"racers": []}})");
    rejects(R"({"portfolio": {"racers": [3]}})");
    rejects(R"({"portfolio": {"frobnicate": 1}})");
    rejects(R"({"mode": "paretto"})");
}

} // namespace
