/**
 * @file
 * Multi-core deployment study: scale GoogleNet across 1/2/4 crossbar-
 * connected cores at several batch sizes, co-exploring the shared
 * buffer size per configuration — the paper's Section 5.4.2/5.4.3
 * methodology as a user-facing workflow, on the deployment subsystem
 * (sim/deployment.h): each configuration is a homogeneous deployment
 * of the "simba" preset, exactly what a run spec's
 * "deployment": {"cores": N} section resolves to.
 *
 * Usage: multicore_deployment [sample_budget]
 */

#include <cstdio>
#include <cstdlib>

#include "core/cocco.h"
#include "sim/deployment.h"
#include "sim/platform.h"
#include "util/table.h"

using namespace cocco;

int
main(int argc, char **argv)
{
    int64_t budget = argc > 1 ? std::atoll(argv[1]) : 2500;

    Graph g = buildModel("GoogleNet");
    std::printf("Model: %s — %d nodes\n\n", g.name().c_str(), g.size());

    Table t({"cores", "batch", "energy (mJ)", "latency (ms)",
             "buffer/core"});
    for (int cores : {1, 2, 4}) {
        for (int batch : {1, 2, 8}) {
            AcceleratorConfig accel = platformPreset("simba");
            accel.batch = batch;

            // N cores of the paper platform behind the default
            // crossbar; a single core is exactly the plain run.
            CoccoFramework cocco(g, homogeneousDeployment(accel, cores));
            SearchSpec spec;
            spec.style = BufferStyle::Shared;
            spec.eval.sampleBudget = budget;
            spec.eval.alpha = 0.002;
            spec.eval.metric = Metric::Energy;
            CoccoResult r = cocco.explore(spec);

            t.addRow({Table::fmtInt(cores), Table::fmtInt(batch),
                      Table::fmtDouble(r.cost.energyPj / 1e9, 2),
                      Table::fmtDouble(r.cost.latencyMs(), 2),
                      r.buffer.str()});
        }
        t.addRule();
    }
    t.print();

    std::printf("\nEnergy rises slightly with core count (crossbar weight"
                " rotation),\nlatency drops sub-linearly, and the required"
                " per-core buffer shrinks\nas weights are sharded — the"
                " trends of the paper's Table 3.\n");
    return 0;
}
