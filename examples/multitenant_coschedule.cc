/**
 * @file
 * Multi-tenant co-scheduling walkthrough: two tenants (a vision
 * service and a mobile model) share one big-little deployment. The
 * myopic greedy-place baseline stacks both tenants onto the fastest
 * core; the joint placement search (any registered driver) spreads
 * them and wins on contention-scaled latency. The example prints the
 * side-by-side outcome and the searched schedule's per-tenant
 * timeline lanes.
 *
 * Usage: multitenant_coschedule [algo] [sample_budget]
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/cocco.h"
#include "core/serialize.h"
#include "schedule/co_scheduler.h"
#include "sim/platform.h"
#include "util/logging.h"
#include "util/table.h"

using namespace cocco;

namespace {

TenantSpec
tenant(const char *name, const char *model, double rateHz, double slaMs)
{
    TenantSpec t;
    t.name = name;
    t.workload.model = model;
    t.arrivalRateHz = rateHz;
    t.slaLatencyMs = slaMs;
    return t;
}

ScheduleResult
explore(const std::vector<Graph> &graphs, const WorkloadSet &set,
        const DeploymentConfig &dep, const std::string &algo,
        int64_t budget)
{
    SearchSpec spec;
    spec.algo = algo;
    spec.eval.sampleBudget = budget;
    spec.eval.seed = 7;
    spec.ga.population = 12;
    return CoScheduler(graphs, set, dep).explore(spec);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string algo = argc > 1 ? argv[1] : "ga";
    int64_t budget = argc > 2 ? std::atoll(argv[2]) : 800;

    // The tenancy: a throughput-hungry vision service with a tight
    // SLA next to a lighter mobile model with a relaxed one.
    WorkloadSet set;
    set.tenants.push_back(tenant("vision", "GoogleNet", 40.0, 18.0));
    set.tenants.push_back(tenant("mobile", "MobileNetV2", 25.0, 30.0));

    std::string err;
    if (!validateWorkloadSet(set, &err))
        fatal("%s", err.c_str());
    std::vector<Graph> graphs;
    for (const TenantSpec &t : set.tenants)
        graphs.push_back(buildModel(t.workload.model));

    // The silicon: 2x simba + 2x edge behind one crossbar.
    AcceleratorConfig accel = platformPreset("simba");
    DeploymentSpec dspec;
    dspec.enabled = true;
    dspec.preset = "big-little";
    DeploymentConfig dep;
    if (!resolveDeployment(dspec, accel, &dep, &err))
        fatal("%s", err.c_str());

    std::printf("co-scheduling %d tenants on big-little (%d cores), "
                "budget %lld/tenant-class\n\n",
                set.size(), dep.cores(),
                static_cast<long long>(budget));

    ScheduleResult greedy =
        explore(graphs, set, dep, "greedy-place", budget);
    ScheduleResult searched = explore(graphs, set, dep, algo, budget);

    Table t({"tenant", "greedy-place", algo});
    for (int i = 0; i < set.size(); ++i) {
        const TenantCost &gc = greedy.cost.tenants[i];
        const TenantCost &sc = searched.cost.tenants[i];
        t.addRow({set.tenants[i].name,
                  strprintf("core %d, %8.3f ms%s",
                            greedy.schedule.coreOf[i], gc.latencyMs,
                            gc.slaViolation ? " VIOLATED" : ""),
                  strprintf("core %d, %8.3f ms%s",
                            searched.schedule.coreOf[i], sc.latencyMs,
                            sc.slaViolation ? " VIOLATED" : "")});
    }
    t.addRow({"SLA violations",
              strprintf("%d", greedy.cost.slaViolations),
              strprintf("%d", searched.cost.slaViolations)});
    t.addRow({"mean latency",
              strprintf("%.3f ms", greedy.cost.meanLatencyMs),
              strprintf("%.3f ms", searched.cost.meanLatencyMs)});
    t.addRow({"power",
              strprintf("%.3f mW", greedy.cost.energyPjPerSec / 1e9),
              strprintf("%.3f mW", searched.cost.energyPjPerSec / 1e9)});
    t.print();

    std::printf("\ngreedy-place is contention-blind (heaviest tenant "
                "first onto the fastest feasible\ncore); the joint "
                "search scores every placement under processor "
                "sharing.\n\n");

    // The searched schedule's per-tenant lanes + per-subgraph Gantt.
    CoScheduler sched(graphs, set, dep);
    std::printf("%s", scheduleGantt(sched.model(), searched).c_str());
    return 0;
}
