/**
 * @file
 * Irregular-network DSE: generate a RandWire network (the class of
 * topology hand-crafted fusion rules cannot handle), compare the
 * greedy and DP baselines against Cocco's partition under a fixed
 * buffer, then co-explore buffer capacity vs. energy at several
 * alpha preferences — the workflow the paper's introduction motivates.
 *
 * Usage: irregular_network_dse [seed] [sample_budget]
 */

#include <cstdio>
#include <cstdlib>

#include "core/cocco.h"
#include "partition/dp.h"
#include "partition/greedy.h"
#include "sim/platform.h"
#include "util/table.h"

using namespace cocco;

int
main(int argc, char **argv)
{
    uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1;
    int64_t budget = argc > 2 ? std::atoll(argv[2]) : 4000;

    // The seed is a first-class model parameter: the same build is
    // reachable by name via buildModel("RandWire-A", params) or the
    // CLI's --model-seed.
    ModelParams params;
    params.seed = seed;
    Graph g = buildModel("RandWire-A", params);
    std::printf("Generated %s (seed %llu): %d nodes, %d edges\n\n",
                g.name().c_str(), static_cast<unsigned long long>(seed),
                g.size(), g.numEdges());

    AcceleratorConfig accel = platformPreset("simba");
    CostModel model(g, accel);

    // --- Fixed-buffer partition comparison (EMA metric). ---
    BufferConfig fixed;
    fixed.style = BufferStyle::Separate;
    fixed.actBytes = 1024 * 1024;
    fixed.weightBytes = 1152 * 1024;

    Partition greedy = greedyPartition(g, model, fixed, Metric::EMA);
    Partition dp = dpPartition(g, model, fixed, Metric::EMA);

    CoccoFramework cocco(g, accel);
    SearchSpec spec;
    spec.eval.coExplore = false;
    spec.fixedBuffer = fixed;
    spec.eval.sampleBudget = budget;
    spec.eval.metric = Metric::EMA;
    // Flexible initialization: warm-start the GA from the baselines
    // and let it fine-tune (paper Section 4.3, benefit 4).
    CoccoResult ga = cocco.explore(spec, {greedy, dp});

    auto ema_of = [&](const Partition &p) {
        return static_cast<double>(model.partitionCost(p, fixed).emaBytes);
    };

    Table t({"method", "subgraphs", "EMA (MB)"});
    t.addRow({"Halide (greedy)",
              Table::fmtInt(static_cast<int64_t>(greedy.blocks().size())),
              Table::fmtDouble(ema_of(greedy) / 1048576.0)});
    t.addRow({"Irregular-NN (DP)",
              Table::fmtInt(static_cast<int64_t>(dp.blocks().size())),
              Table::fmtDouble(ema_of(dp) / 1048576.0)});
    t.addRow({"Cocco (GA)",
              Table::fmtInt(static_cast<int64_t>(ga.partition.blocks().size())),
              Table::fmtDouble(static_cast<double>(ga.cost.emaBytes) /
                               1048576.0)});
    t.print();

    // --- Capacity/energy preference sweep (Formula 2). ---
    std::printf("\nCo-exploration across alpha preferences:\n");
    Table t2({"alpha", "shared buffer", "energy (mJ)", "EMA (MB)"});
    for (double alpha : {5e-4, 2e-3, 1e-2}) {
        SearchSpec sweep;
        sweep.style = BufferStyle::Shared;
        sweep.eval.sampleBudget = budget;
        sweep.eval.alpha = alpha;
        sweep.eval.metric = Metric::Energy;
        CoccoResult r = cocco.explore(sweep);
        t2.addRow({Table::fmtDouble(alpha, 4), r.buffer.str(),
                   Table::fmtDouble(r.cost.energyPj / 1e9, 3),
                   Table::fmtDouble(static_cast<double>(r.cost.emaBytes) /
                                    1048576.0)});
    }
    t2.print();
    return 0;
}
