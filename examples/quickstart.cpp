/**
 * @file
 * Quickstart: build ResNet50, run a hardware-mapping co-exploration
 * for a shared buffer from a declarative SearchSpec, and print the
 * recommended memory configuration with the resulting partition and
 * costs. Any registered driver works — pass "sa", "ts-random" or
 * "ts-grid" as the second argument to swap the strategy without
 * touching any other line.
 *
 * Usage: quickstart [sample_budget] [algo]
 */

#include <cstdio>
#include <cstdlib>

#include "core/cocco.h"
#include "sim/platform.h"
#include "util/table.h"

using namespace cocco;

int
main(int argc, char **argv)
{
    int64_t budget = argc > 1 ? std::atoll(argv[1]) : 4000;
    std::string algo = argc > 2 ? argv[2] : "ga";

    Graph g = buildModel("ResNet50");
    std::printf("Model: %s — %d nodes, %d edges, %.2f GMACs, %.1f MB "
                "weights\n",
                g.name().c_str(), g.size(), g.numEdges(),
                g.totalMacs() / 1e9,
                g.totalWeightBytes() / (1024.0 * 1024.0));

    // The paper's Simba-like platform, by preset name — swap for
    // "edge"/"cloud"/"simba-x4" or a platform JSON file to retarget.
    AcceleratorConfig accel = platformPreset("simba");
    std::printf("Platform: %.3f TOPS, %.0f GB/s DRAM per core\n\n",
                accel.peakTops(), accel.dramGBpsPerCore);

    CoccoFramework cocco(g, accel);

    // One declarative spec drives any registered strategy.
    SearchSpec spec;
    spec.algo = algo;
    spec.style = BufferStyle::Shared;
    spec.eval.sampleBudget = budget;
    spec.eval.alpha = 0.002;
    spec.eval.metric = Metric::Energy;
    spec.ga.population = 100;

    CoccoResult r = cocco.explore(spec);

    std::printf("Co-exploration (%s) finished after %lld samples.\n",
                algo.c_str(), static_cast<long long>(r.samples));
    std::printf("Recommended shared buffer: %s\n", r.buffer.str().c_str());
    std::printf("Objective (Formula 2, alpha=%.4f): %.3E\n\n",
                spec.eval.alpha, r.objective);

    Table t({"metric", "value"});
    t.addRow({"subgraphs", Table::fmtInt(r.cost.subgraphs)});
    t.addRow({"EMA", Table::fmtMB(static_cast<double>(r.cost.emaBytes))});
    t.addRow({"energy", Table::fmtDouble(r.cost.energyPj / 1e9, 3) + " mJ"});
    t.addRow({"latency", Table::fmtDouble(r.cost.latencyMs(), 3) + " ms"});
    t.addRow({"avg BW", Table::fmtDouble(r.cost.avgBwGBps, 2) + " GB/s"});
    t.print();

    // Show the first few subgraphs of the recommended execution plan.
    std::printf("\nFirst subgraphs of the execution strategy:\n");
    auto blocks = r.partition.blocks();
    for (size_t b = 0; b < blocks.size() && b < 5; ++b) {
        std::printf("  subgraph %zu:", b);
        for (NodeId v : blocks[b])
            std::printf(" %s", g.layer(v).name.c_str());
        std::printf("\n");
    }
    if (blocks.size() > 5)
        std::printf("  ... (%zu total)\n", blocks.size());
    return 0;
}
