/**
 * @file
 * Quickstart: build ResNet50, run Cocco's hardware-mapping
 * co-exploration for a shared buffer, and print the recommended
 * memory configuration with the resulting partition and costs.
 *
 * Usage: quickstart [sample_budget]
 */

#include <cstdio>
#include <cstdlib>

#include "core/cocco.h"
#include "util/table.h"

using namespace cocco;

int
main(int argc, char **argv)
{
    int64_t budget = argc > 1 ? std::atoll(argv[1]) : 4000;

    Graph g = buildModel("ResNet50");
    std::printf("Model: %s — %d nodes, %d edges, %.2f GMACs, %.1f MB "
                "weights\n",
                g.name().c_str(), g.size(), g.numEdges(),
                g.totalMacs() / 1e9,
                g.totalWeightBytes() / (1024.0 * 1024.0));

    AcceleratorConfig accel; // Simba-like: 2.048 TOPS, 16 GB/s DRAM
    std::printf("Platform: %.3f TOPS, %.0f GB/s DRAM per core\n\n",
                accel.peakTops(), accel.dramGBpsPerCore);

    CoccoFramework cocco(g, accel);

    GaOptions opts;
    opts.sampleBudget = budget;
    opts.population = 100;
    opts.alpha = 0.002;
    opts.metric = Metric::Energy;

    CoccoResult r = cocco.coExplore(BufferStyle::Shared, opts);

    std::printf("Co-exploration finished after %lld samples.\n",
                static_cast<long long>(r.samples));
    std::printf("Recommended shared buffer: %s\n", r.buffer.str().c_str());
    std::printf("Objective (Formula 2, alpha=%.4f): %.3E\n\n", opts.alpha,
                r.objective);

    Table t({"metric", "value"});
    t.addRow({"subgraphs", Table::fmtInt(r.cost.subgraphs)});
    t.addRow({"EMA", Table::fmtMB(static_cast<double>(r.cost.emaBytes))});
    t.addRow({"energy", Table::fmtDouble(r.cost.energyPj / 1e9, 3) + " mJ"});
    t.addRow({"latency", Table::fmtDouble(r.cost.latencyMs(), 3) + " ms"});
    t.addRow({"avg BW", Table::fmtDouble(r.cost.avgBwGBps, 2) + " GB/s"});
    t.print();

    // Show the first few subgraphs of the recommended execution plan.
    std::printf("\nFirst subgraphs of the execution strategy:\n");
    auto blocks = r.partition.blocks();
    for (size_t b = 0; b < blocks.size() && b < 5; ++b) {
        std::printf("  subgraph %zu:", b);
        for (NodeId v : blocks[b])
            std::printf(" %s", g.layer(v).name.c_str());
        std::printf("\n");
    }
    if (blocks.size() > 5)
        std::printf("  ... (%zu total)\n", blocks.size());
    return 0;
}
