/**
 * @file
 * Partition playground: a small hand-built branchy graph walked
 * through every layer of the library — tile-flow derivation (the
 * paper's Figure 5/6 machinery), region allocation, per-subgraph
 * costs, and the exact enumeration optimum. Good for understanding
 * the execution scheme on something you can trace by hand.
 */

#include <cstdio>

#include "graph/algorithms.h"
#include "mem/region_manager.h"
#include "partition/enumeration.h"
#include "sim/cost_model.h"
#include "tileflow/footprint.h"
#include "util/table.h"

using namespace cocco;

namespace {

/** A two-branch subgraph like the paper's Figure 4 example. */
Graph
buildToyGraph()
{
    Graph g("toy");
    Layer in;
    in.name = "input";
    in.kind = LayerKind::Input;
    in.outH = 56;
    in.outW = 56;
    in.outC = 32;
    NodeId n_in = g.addNode(in);

    auto conv = [&](const char *name, NodeId src, int c, int k, int s) {
        Layer l;
        l.name = name;
        l.kind = LayerKind::Conv;
        const Layer &p = g.layer(src);
        l.outH = (p.outH + s - 1) / s;
        l.outW = (p.outW + s - 1) / s;
        l.outC = c;
        l.kernel = k;
        l.stride = s;
        return g.addNode(l, {src});
    };

    NodeId a = conv("branchA_5x5s2", n_in, 32, 5, 2);
    NodeId b1 = conv("branchB_1x1", n_in, 32, 1, 1);
    NodeId b2 = conv("branchB_3x3s2", b1, 32, 3, 2);
    Layer addl;
    addl.name = "join_add";
    addl.kind = LayerKind::Eltwise;
    addl.outH = g.layer(a).outH;
    addl.outW = g.layer(a).outW;
    addl.outC = 32;
    NodeId j = g.addNode(addl, {a, b2});
    conv("tail_3x3", j, 64, 3, 1);
    return g;
}

} // namespace

int
main()
{
    Graph g = buildToyGraph();
    std::printf("%s", g.str().c_str());

    // Whole graph as one subgraph: derive the execution scheme.
    std::vector<NodeId> all;
    for (NodeId v = 1; v < g.size(); ++v)
        all.push_back(v);

    ExecutionScheme s = bestScheme(g, all);
    std::printf("\nConsumption-centric scheme (out tile %d):\n", s.outTile);
    Table t({"node", "ext", "deltaHxW", "tile xHxW", "upd", "MAIN B",
             "SIDE B"});
    for (const NodeScheme &ns : s.nodes) {
        t.addRow({g.layer(ns.node).name, ns.external ? "yes" : "no",
                  Table::fmtInt(ns.deltaH) + "x" + Table::fmtInt(ns.deltaW),
                  Table::fmtInt(ns.xH) + "x" + Table::fmtInt(ns.xW),
                  Table::fmtInt(ns.updNum), Table::fmtInt(ns.mainBytes),
                  Table::fmtInt(ns.sideBytes)});
    }
    t.print();
    std::printf("activation footprint: %lld bytes in %d regions\n",
                static_cast<long long>(s.actFootprintBytes), s.numRegions);

    // Region allocation into a 64KB buffer.
    RegionManager mgr;
    RegionAllocation alloc = mgr.allocate(s, 64 * 1024);
    std::printf("fits a 64KB global buffer: %s (used %lld B, "
                "register file %lld B)\n",
                alloc.fits ? "yes" : "no",
                static_cast<long long>(alloc.usedBytes),
                static_cast<long long>(mgr.registerFileBytes()));

    // Exact optimal partition via the ideal-lattice enumeration.
    AcceleratorConfig accel;
    CostModel model(g, accel);
    BufferConfig buf;
    buf.style = BufferStyle::Shared;
    buf.sharedBytes = 256 * 1024;
    EnumerationResult best =
        enumeratePartition(g, model, buf, Metric::EMA);
    std::printf("\nenumeration: complete=%s states=%lld optimal EMA=%.1f KB"
                "\noptimal partition: %s\n",
                best.complete ? "yes" : "no",
                static_cast<long long>(best.statesVisited),
                best.cost / 1024.0, best.best.str().c_str());
    return 0;
}
