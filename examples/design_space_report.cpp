/**
 * @file
 * Design-space report: run a recorded co-exploration on a model,
 * extract the capacity/energy Pareto front with the alpha range that
 * selects each point (the economics behind the paper's Figure 14),
 * then render the execution timeline of the recommended configuration
 * (which subgraphs are compute- vs communication-bound).
 *
 * Usage: design_space_report [model] [sample_budget]
 */

#include <cstdio>
#include <cstdlib>
#include <limits>

#include "core/cocco.h"
#include "search/pareto.h"
#include "sim/platform.h"
#include "sim/timeline.h"
#include "util/logging.h"
#include "util/table.h"

using namespace cocco;

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "GoogleNet";
    int64_t budget = argc > 2 ? std::atoll(argv[2]) : 4000;

    Graph g = buildModel(name);
    AcceleratorConfig accel = platformPreset("simba");
    CoccoFramework cocco(g, accel);

    SearchSpec spec;
    spec.style = BufferStyle::Shared;
    spec.eval.sampleBudget = budget;
    spec.eval.alpha = 0.002;
    spec.eval.metric = Metric::Energy;
    spec.ga.recordPoints = true;
    CoccoResult r = cocco.explore(spec);

    std::printf("%s: %lld samples recorded, recommended buffer %s\n\n",
                name.c_str(), static_cast<long long>(r.samples),
                r.buffer.str().c_str());

    // --- Pareto front over the sampled design points. ---
    auto front = paretoFront(r.points);
    std::printf("Capacity/energy Pareto front (%zu undominated points):\n",
                front.size());
    Table t({"capacity", "energy (mJ)", "selected for alpha in"});
    for (const ParetoPoint &p : front) {
        std::string hi =
            p.alphaHi == std::numeric_limits<double>::infinity()
                ? "inf"
                : strprintf("%.2E", p.alphaHi);
        std::string range = strprintf("[%.2E, %s)", p.alphaLo, hi.c_str());
        t.addRow({Table::fmtKB(p.bufferBytes),
                  Table::fmtDouble(p.metric / 1e9, 3), range});
    }
    t.print();

    const ParetoPoint &chosen = selectByAlpha(front, spec.eval.alpha);
    std::printf("\nAt alpha=%.4f the front selects %s — the search "
                "returned %s.\n\n",
                spec.eval.alpha, Table::fmtKB(chosen.bufferBytes).c_str(),
                r.buffer.str().c_str());

    // --- Execution timeline of the recommendation. ---
    Timeline tl = buildTimeline(cocco.model(), r.partition, r.buffer);
    std::printf("Execution timeline (%zu subgraphs, %.0f%% compute-bound "
                "windows):\n%s",
                tl.entries.size(), tl.computeBoundFraction() * 100.0,
                tl.gantt().c_str());
    return 0;
}
