#include "bench_common.h"

#include <cstdio>
#include <cstring>
#include <cstdlib>

namespace cocco::bench {

BenchArgs
parseArgs(int argc, char **argv, const char *what)
{
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--full") == 0) {
            args.full = true;
        } else if (std::strcmp(argv[i], "--fast") == 0) {
            args.full = false;
        } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
            args.seed = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(argv[i], "--metrics-out") == 0 &&
                   i + 1 < argc) {
            args.metricsOut = argv[++i];
        } else if (std::strcmp(argv[i], "--help") == 0) {
            std::printf("%s\n  --fast   CI-sized budgets (default)\n"
                        "  --full   paper-sized budgets\n"
                        "  --seed N PRNG seed (default 1)\n"
                        "  --metrics-out FILE  write JSON run metrics\n",
                        what);
            std::exit(0);
        }
    }
    return args;
}

cocco::SearchSpec
searchSpec(const std::string &algo, const BenchArgs &args)
{
    cocco::SearchSpec spec;
    spec.algo = algo;
    spec.eval.sampleBudget = args.coExploreBudget();
    spec.eval.seed = args.seed;
    spec.ga.population = args.population();
    spec.twoStep.population = args.population();
    spec.twoStep.samplesPerCandidate = args.perCandidateBudget();
    return spec;
}

AcceleratorConfig
paperAccelerator()
{
    // The "simba" preset IS the paper platform (Section 5.1.2).
    return platformPreset("simba");
}

BufferConfig
paperFixedBuffer()
{
    BufferConfig buf;
    buf.style = BufferStyle::Separate;
    buf.actBytes = 1024 * 1024;       // 1MB global buffer
    buf.weightBytes = 1152 * 1024;    // 1.125MB weight buffer
    return buf;
}

std::vector<std::string>
coExploreModels()
{
    return {"ResNet50", "GoogleNet", "RandWire-A", "NasNet"};
}

void
banner(const char *title, const BenchArgs &args)
{
    std::printf("=== %s ===\n", title);
    std::printf("mode: %s (seed %llu)\n\n",
                args.full ? "--full (paper-sized budgets)"
                          : "--fast (CI-sized budgets)",
                static_cast<unsigned long long>(args.seed));
}

bool
writeMetrics(const BenchArgs &args, const char *tool,
             const std::vector<RunMetrics> &runs)
{
    if (args.metricsOut.empty())
        return true;
    if (!writeMetricsFile(args.metricsOut, tool, runs)) {
        std::fprintf(stderr, "error: could not write metrics to %s\n",
                     args.metricsOut.c_str());
        return false;
    }
    std::printf("metrics: %zu run(s) -> %s\n", runs.size(),
                args.metricsOut.c_str());
    return true;
}

} // namespace cocco::bench
