/**
 * @file
 * Figure 12 reproduction: convergence of the co-exploration methods
 * (fixed-HW + GA, RS+GA, GS+GA, SA, Cocco) on ResNet50, GoogleNet,
 * and RandWire. Prints the best-cost-so-far series at 10%-of-budget
 * checkpoints, plus the Figure 12(d) table: samples needed to reach
 * 1.05x of Cocco's final cost.
 *
 * Expected shape: Cocco converges fastest and lowest; GS+GA is slow
 * on the models whose optimal capacity is small (GoogleNet/RandWire)
 * because it sweeps from large to small.
 */

#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_common.h"
#include "core/cocco.h"
#include "util/csv.h"
#include "util/table.h"

using namespace cocco;
using namespace cocco::bench;

namespace {

/** Best cost at evenly spaced checkpoints of a trace. */
std::vector<double>
checkpoints(const std::vector<TracePoint> &trace, int n, int64_t budget)
{
    std::vector<double> out;
    size_t j = 0;
    double best = kInfeasiblePenalty;
    for (int i = 1; i <= n; ++i) {
        int64_t target = budget * i / n;
        while (j < trace.size() && trace[j].sample <= target)
            best = trace[j++].bestCost;
        out.push_back(best);
    }
    return out;
}

/** First sample index whose best cost is within 1.05x of target. */
int64_t
samplesToReach(const std::vector<TracePoint> &trace, double target)
{
    for (const TracePoint &tp : trace)
        if (tp.bestCost <= 1.05 * target)
            return tp.sample;
    return -1;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchArgs args = parseArgs(argc, argv, "Figure 12: sample efficiency");
    banner("Figure 12: convergence of co-exploration methods", args);

    // Optional: --csv PREFIX writes one plottable trace file per model.
    const char *csv_prefix = nullptr;
    for (int i = 1; i + 1 < argc; ++i)
        if (std::strcmp(argv[i], "--csv") == 0)
            csv_prefix = argv[i + 1];

    AcceleratorConfig accel = paperAccelerator();
    const int64_t budget = args.coExploreBudget();
    const std::vector<std::string> models{"ResNet50", "GoogleNet",
                                          "RandWire-A"};

    Table reach_t({"model", "RS+GA", "GS+GA", "SA", "Cocco"});

    for (const std::string &name : models) {
        Graph g = buildModel(name);
        CostModel model(g, accel);
        DseSpace space = DseSpace::paperSpace(BufferStyle::Shared);

        struct Series
        {
            std::string label;
            SearchResult result;
        };
        std::vector<Series> series;

        // Every method resolves through the driver registry; the
        // specs only differ in the algorithm key and the mode.
        const SearcherRegistry &reg = SearcherRegistry::instance();

        // Fixed-HW baselines: partition-only GA whose trace is lifted
        // into the Formula 2 objective at that fixed size.
        for (auto [label, buf] :
             {std::pair{"Buf(S)+GA",
                        BufferConfig::fixedSmall(BufferStyle::Shared)},
              std::pair{"Buf(M)+GA",
                        BufferConfig::fixedMedium(BufferStyle::Shared)},
              std::pair{"Buf(L)+GA",
                        BufferConfig::fixedLarge(BufferStyle::Shared)}}) {
            SearchSpec spec = searchSpec("ga", args);
            spec.eval.coExplore = false;
            DseSpace fixed = DseSpace::fixedSpace(buf);
            SearchResult r = reg.make("ga", model, fixed, spec)->run();
            for (TracePoint &tp : r.trace)
                if (tp.bestCost < kInfeasiblePenalty)
                    tp.bestCost = buf.totalBytes() + 0.002 * tp.bestCost;
            r.bestCost = buf.totalBytes() + 0.002 * r.bestCost;
            series.push_back({label, std::move(r)});
        }

        for (auto [label, key] : {std::pair{"RS+GA", "ts-random"},
                                  std::pair{"GS+GA", "ts-grid"},
                                  std::pair{"SA", "sa"},
                                  std::pair{"Cocco", "ga"}}) {
            SearchSpec spec = searchSpec(key, args);
            series.push_back(
                {label, reg.make(key, model, space, spec)->run()});
        }

        // Print the convergence series.
        std::printf("%s (cost = Formula 2, checkpoints at 10%% of %lld "
                    "samples):\n",
                    name.c_str(), static_cast<long long>(budget));
        Table t({"method", "10%", "20%", "40%", "60%", "80%", "100%"});
        for (const Series &s : series) {
            std::vector<double> cp = checkpoints(s.result.trace, 10, budget);
            t.addRow({s.label, Table::fmtSci(cp[0]), Table::fmtSci(cp[1]),
                      Table::fmtSci(cp[3]), Table::fmtSci(cp[5]),
                      Table::fmtSci(cp[7]), Table::fmtSci(cp[9])});
        }
        t.print();
        std::printf("\n");

        if (csv_prefix) {
            CsvWriter csv({"samples", "method", "best_cost"});
            for (const Series &s : series)
                for (const TracePoint &tp : s.result.trace)
                    csv.addRow({Table::fmtInt(tp.sample), s.label,
                                Table::fmtSci(tp.bestCost, 6)});
            std::string path =
                std::string(csv_prefix) + "_" + name + ".csv";
            if (csv.writeFile(path))
                std::printf("(trace written to %s)\n\n", path.c_str());
        }

        // Figure 12(d): samples to reach 1.05x of Cocco's final cost.
        double target = series.back().result.bestCost;
        auto fmt = [&](const SearchResult &r) {
            int64_t s = samplesToReach(r.trace, target);
            return s < 0 ? std::string("never") : Table::fmtInt(s);
        };
        reach_t.addRow({name, fmt(series[3].result), fmt(series[4].result),
                        fmt(series[5].result), fmt(series[6].result)});
    }

    std::printf("Figure 12(d): samples to attain 1.05x of Cocco's final "
                "cost (fewer = more efficient):\n");
    reach_t.print();
    std::printf("\nExpected shape: Cocco needs the fewest samples on every "
                "model.\n");
    return 0;
}
