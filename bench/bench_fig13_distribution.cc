/**
 * @file
 * Figure 13 reproduction: how the population's sample points move
 * through the (total buffer size, energy) plane during Cocco's
 * optimization. The paper plots 20 generations x 500 genomes in ten
 * colour groups; this harness prints per-group centroids and the
 * group's best Formula-2 intercept, which is the quantitative content
 * of the figure.
 *
 * Expected shape: group centroids drift toward a lower intercept of
 * the alpha-slope line and the spread (std dev) shrinks — the
 * distribution "gets more centralized in later generations".
 */

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/cocco.h"
#include "util/table.h"

using namespace cocco;
using namespace cocco::bench;

int
main(int argc, char **argv)
{
    BenchArgs args =
        parseArgs(argc, argv, "Figure 13: sample distribution drift");
    banner("Figure 13: sample-point distribution across generations", args);

    AcceleratorConfig accel = paperAccelerator();
    const double alpha = 0.002;
    const int groups = 10;

    for (const std::string &name : coExploreModels()) {
        Graph g = buildModel(name);
        CostModel model(g, accel);
        DseSpace space = DseSpace::paperSpace(BufferStyle::Shared);

        GaOptions o;
        o.population = args.full ? 500 : 100;
        o.sampleBudget = static_cast<int64_t>(o.population) * 2 * groups;
        o.alpha = alpha;
        o.seed = args.seed;
        o.recordPoints = true;
        SearchResult r = GeneticSearch(model, space, o).run();

        std::printf("%s (%lld samples in %d groups):\n", name.c_str(),
                    static_cast<long long>(r.samples), groups);
        Table t({"group", "mean buf (MB)", "mean energy (mJ)",
                 "std energy (mJ)", "best intercept"});
        int64_t per_group =
            (r.samples + groups - 1) / static_cast<int64_t>(groups);
        for (int gi = 0; gi < groups; ++gi) {
            int64_t lo = gi * per_group;
            int64_t hi = std::min<int64_t>(r.samples, lo + per_group);
            if (lo >= hi)
                break;
            double sum_b = 0, sum_e = 0, sum_e2 = 0;
            double best_intercept = kInfeasiblePenalty;
            int n = 0;
            for (int64_t i = lo; i < hi; ++i) {
                const SamplePoint &pt = r.points[i];
                sum_b += static_cast<double>(pt.bufferBytes);
                sum_e += pt.metric;
                sum_e2 += pt.metric * pt.metric;
                best_intercept = std::min(
                    best_intercept,
                    static_cast<double>(pt.bufferBytes) + alpha * pt.metric);
                ++n;
            }
            double mean_e = sum_e / n;
            double var = sum_e2 / n - mean_e * mean_e;
            t.addRow({Table::fmtInt(gi + 1),
                      Table::fmtDouble(sum_b / n / 1048576.0, 2),
                      Table::fmtDouble(mean_e / 1e9, 3),
                      Table::fmtDouble(std::sqrt(std::max(0.0, var)) / 1e9,
                                       3),
                      Table::fmtSci(best_intercept)});
        }
        t.print();
        std::printf("\n");
    }
    std::printf("Expected shape: best intercept falls monotonically-ish and "
                "the energy\nspread shrinks in later groups.\n");
    return 0;
}
