/**
 * @file
 * Figure 1 reproduction: the effect of on-chip memory capacity on a
 * computation graph's external memory access. A small buffer only
 * fuses neighbouring nodes; a large one buffers whole subgraphs,
 * approaching the floor EMA = #Wgt + #In + #Out; with no buffering at
 * all the ceiling is ~2 bytes per MAC-operand pair (every operand
 * from DRAM).
 *
 * Uses an 11-node branchy graph like the paper's sketch, plus the
 * four evaluated models swept across the shared-buffer grid.
 */

#include <cstdio>

#include "bench_common.h"
#include "core/cocco.h"
#include "models/builder_util.h"
#include "partition/greedy.h"
#include "util/table.h"

using namespace cocco;
using namespace cocco::bench;

namespace {

/** An 11-node graph shaped like Figure 1's sketch. */
Graph
figureOneGraph()
{
    ModelBuilder b("fig1");
    NodeId in = b.input(56, 56, 32, "n_in");
    NodeId n0 = b.conv(in, 32, 3, 1, "n0");
    NodeId n1 = b.conv(n0, 32, 3, 1, "n1");
    NodeId n2 = b.conv(n0, 32, 1, 1, "n2");
    NodeId n3 = b.conv(n1, 32, 3, 1, "n3");
    NodeId n4 = b.add({n2, n3}, "n4");
    NodeId n5 = b.conv(n4, 64, 3, 2, "n5");
    NodeId n6 = b.conv(n5, 64, 3, 1, "n6");
    NodeId n7 = b.conv(n5, 64, 1, 1, "n7");
    NodeId n8 = b.add({n6, n7}, "n8");
    NodeId n9 = b.conv(n8, 64, 3, 1, "n9");
    b.conv(n9, 64, 1, 1, "n10");
    return b.take();
}

} // namespace

int
main(int argc, char **argv)
{
    BenchArgs args = parseArgs(argc, argv, "Figure 1: capacity vs EMA");
    banner("Figure 1: on-chip capacity vs external memory access", args);

    AcceleratorConfig accel = paperAccelerator();
    Graph g = figureOneGraph();
    CostModel model(g, accel);

    int64_t min_ema = g.totalWeightBytes() + g.outBytes(0) +
                      g.outBytes(g.size() - 1);
    std::printf("toy graph: %d nodes; Min EMA = #Wgt + #In + #Out = "
                "%.2f MB; Max EMA ~ 2 x #OPs = %.2f MB\n\n",
                g.size(), min_ema / 1048576.0,
                2.0 * g.totalMacs() / 1048576.0);

    Table t({"shared buffer", "subgraphs", "EMA (MB)", "vs Min EMA"});
    for (int64_t kb : {16, 48, 128, 512, 2048}) {
        BufferConfig buf;
        buf.style = BufferStyle::Shared;
        buf.sharedBytes = kb * 1024;
        Partition p = greedyPartition(g, model, buf, Metric::EMA);
        GraphCost c = model.partitionCost(p, buf);
        t.addRow({Table::fmtKB(buf.sharedBytes),
                  Table::fmtInt(static_cast<int64_t>(p.blocks().size())),
                  Table::fmtDouble(c.emaBytes / 1048576.0, 3),
                  Table::fmtDouble(static_cast<double>(c.emaBytes) /
                                       static_cast<double>(min_ema),
                                   2) +
                      "x"});
    }
    t.print();

    std::printf("\nSame sweep on the evaluated models (EMA in MB, greedy "
                "partition):\n");
    Table t2({"model", "192KB", "576KB", "1152KB", "3072KB", "Min EMA"});
    for (const std::string &name : coExploreModels()) {
        Graph m = buildModel(name);
        CostModel mm(m, accel);
        std::vector<std::string> row{name};
        for (int64_t kb : {192, 576, 1152, 3072}) {
            BufferConfig buf;
            buf.style = BufferStyle::Shared;
            buf.sharedBytes = kb * 1024;
            Partition p = greedyPartition(m, mm, buf, Metric::EMA);
            row.push_back(Table::fmtDouble(
                mm.partitionCost(p, buf).emaBytes / 1048576.0, 1));
        }
        int64_t floor_ema = m.totalWeightBytes() + m.outBytes(0);
        for (NodeId v : m.outputs())
            floor_ema += m.outBytes(v);
        row.push_back(Table::fmtDouble(floor_ema / 1048576.0, 1));
        t2.addRow(row);
    }
    t2.print();
    std::printf("\nExpected shape: EMA falls monotonically toward the Min-"
                "EMA floor as capacity grows\n(the Figure 1 trade-off; the "
                "area cost of that capacity is Figure 2/14's axis).\n");
    return 0;
}
