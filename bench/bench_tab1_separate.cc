/**
 * @file
 * Table 1 reproduction: hardware-mapping co-exploration with separate
 * activation/weight buffers on ResNet50, GoogleNet, RandWire, NasNet.
 * Methods: fixed hardware (Small/Medium/Large) + partition-only GA,
 * two-step RS+GA and GS+GA, co-optimizing SA, and Cocco. The cost is
 * Formula 2 with alpha = 0.002 and energy as the metric; following the
 * paper, the hardware point chosen by each method is re-evaluated with
 * a final partition-only Cocco pass.
 *
 * Expected shape: Cocco attains the lowest (or tied-lowest) cost on
 * every model; fixed Large is clearly worst on the small-capacity
 * models (RandWire/GoogleNet).
 */

#include <cstdio>
#include <cstring>

#include "bench_common.h"
#include "core/cocco.h"
#include "util/table.h"

using namespace cocco;
using namespace cocco::bench;

namespace {

/** Final partition-only pass and Formula-2 cost at a chosen buffer. */
double
finalCost(CoccoFramework &cocco, const BufferConfig &buf,
          const BenchArgs &args)
{
    SearchSpec spec = searchSpec("ga", args);
    spec.eval.coExplore = false;
    spec.eval.seed = args.seed + 99;
    spec.fixedBuffer = buf;
    CoccoResult r = cocco.explore(spec);
    return objective(r.cost, buf, 0.002, Metric::Energy);
}

} // namespace

int
main(int argc, char **argv)
{
    BenchArgs args =
        parseArgs(argc, argv, "Table 1: co-exploration, separate buffers");
    banner("Table 1: separate-buffer co-exploration (alpha=0.002, energy)",
           args);

    AcceleratorConfig accel = paperAccelerator();

    for (const std::string &name : coExploreModels()) {
        Graph g = buildModel(name);
        CoccoFramework cocco(g, accel);
        Table t({"method", "Size (A)", "Size (W)", "Cost"});

        // --- Fixed hardware S/M/L. ---
        for (auto [label, buf] :
             {std::pair{"Buf(S)",
                        BufferConfig::fixedSmall(BufferStyle::Separate)},
              std::pair{"Buf(M)",
                        BufferConfig::fixedMedium(BufferStyle::Separate)},
              std::pair{"Buf(L)",
                        BufferConfig::fixedLarge(BufferStyle::Separate)}}) {
            double cost = finalCost(cocco, buf, args);
            t.addRow({label, Table::fmtKB(buf.actBytes),
                      Table::fmtKB(buf.weightBytes), Table::fmtSci(cost)});
        }
        t.addRule();

        // --- Sampling methods, all through one declarative path:
        //     only the algorithm key differs between the rows. ---
        for (auto [label, key] : {std::pair{"RS+GA", "ts-random"},
                                  std::pair{"GS+GA", "ts-grid"},
                                  std::pair{"SA", "sa"},
                                  std::pair{"Cocco", "ga"}}) {
            SearchSpec spec = searchSpec(key, args);
            spec.style = BufferStyle::Separate;
            CoccoResult r = cocco.explore(spec);
            double cost = finalCost(cocco, r.buffer, args);
            if (std::strcmp(label, "SA") == 0)
                t.addRule(); // two-step rows above, co-opt rows below
            t.addRow({label, Table::fmtKB(r.buffer.actBytes),
                      Table::fmtKB(r.buffer.weightBytes),
                      Table::fmtSci(cost)});
        }

        std::printf("%s:\n", name.c_str());
        t.print();
        std::printf("\n");
    }
    std::printf("Expected shape (paper Table 1): Cocco lowest cost per "
                "model;\nRandWire/GoogleNet prefer small buffers, NasNet "
                "prefers large.\n");
    return 0;
}
