/**
 * @file
 * Table 1 reproduction: hardware-mapping co-exploration with separate
 * activation/weight buffers on ResNet50, GoogleNet, RandWire, NasNet.
 * Methods: fixed hardware (Small/Medium/Large) + partition-only GA,
 * two-step RS+GA and GS+GA, co-optimizing SA, and Cocco. The cost is
 * Formula 2 with alpha = 0.002 and energy as the metric; following the
 * paper, the hardware point chosen by each method is re-evaluated with
 * a final partition-only Cocco pass.
 *
 * Expected shape: Cocco attains the lowest (or tied-lowest) cost on
 * every model; fixed Large is clearly worst on the small-capacity
 * models (RandWire/GoogleNet).
 */

#include <cstdio>

#include "bench_common.h"
#include "core/cocco.h"
#include "search/sa.h"
#include "search/two_step.h"
#include "util/table.h"

using namespace cocco;
using namespace cocco::bench;

namespace {

/** Final partition-only pass and Formula-2 cost at a chosen buffer. */
double
finalCost(CoccoFramework &cocco, const BufferConfig &buf,
          const BenchArgs &args)
{
    GaOptions opts;
    opts.sampleBudget = args.coExploreBudget();
    opts.population = args.population();
    opts.metric = Metric::Energy;
    opts.seed = args.seed + 99;
    CoccoResult r = cocco.partitionOnly(buf, opts);
    return objective(r.cost, buf, 0.002, Metric::Energy);
}

} // namespace

int
main(int argc, char **argv)
{
    BenchArgs args =
        parseArgs(argc, argv, "Table 1: co-exploration, separate buffers");
    banner("Table 1: separate-buffer co-exploration (alpha=0.002, energy)",
           args);

    AcceleratorConfig accel = paperAccelerator();

    for (const std::string &name : coExploreModels()) {
        Graph g = buildModel(name);
        CoccoFramework cocco(g, accel);
        Table t({"method", "Size (A)", "Size (W)", "Cost"});

        // --- Fixed hardware S/M/L. ---
        for (auto [label, buf] :
             {std::pair{"Buf(S)",
                        BufferConfig::fixedSmall(BufferStyle::Separate)},
              std::pair{"Buf(M)",
                        BufferConfig::fixedMedium(BufferStyle::Separate)},
              std::pair{"Buf(L)",
                        BufferConfig::fixedLarge(BufferStyle::Separate)}}) {
            double cost = finalCost(cocco, buf, args);
            t.addRow({label, Table::fmtKB(buf.actBytes),
                      Table::fmtKB(buf.weightBytes), Table::fmtSci(cost)});
        }
        t.addRule();

        DseSpace space = DseSpace::paperSpace(BufferStyle::Separate);
        CostModel &model = cocco.model();

        // --- Two-step RS+GA / GS+GA. ---
        TwoStepOptions ts;
        ts.sampleBudget = args.coExploreBudget();
        ts.samplesPerCandidate = args.perCandidateBudget();
        ts.population = args.population();
        ts.seed = args.seed;
        for (auto [label, fn] : {std::pair{"RS+GA", &twoStepRandom},
                                 std::pair{"GS+GA", &twoStepGrid}}) {
            SearchResult r = fn(model, space, ts);
            double cost = finalCost(cocco, r.bestBuffer, args);
            t.addRow({label, Table::fmtKB(r.bestBuffer.actBytes),
                      Table::fmtKB(r.bestBuffer.weightBytes),
                      Table::fmtSci(cost)});
        }
        t.addRule();

        // --- Co-optimization: SA and Cocco. ---
        SaOptions sa;
        sa.sampleBudget = args.coExploreBudget();
        sa.seed = args.seed;
        SearchResult r_sa = simulatedAnnealing(model, space, sa);
        double sa_cost = finalCost(cocco, r_sa.bestBuffer, args);
        t.addRow({"SA", Table::fmtKB(r_sa.bestBuffer.actBytes),
                  Table::fmtKB(r_sa.bestBuffer.weightBytes),
                  Table::fmtSci(sa_cost)});

        GaOptions ga;
        ga.sampleBudget = args.coExploreBudget();
        ga.population = args.population();
        ga.seed = args.seed;
        CoccoResult r_ga = cocco.coExplore(BufferStyle::Separate, ga);
        double ga_cost = finalCost(cocco, r_ga.buffer, args);
        t.addRow({"Cocco", Table::fmtKB(r_ga.buffer.actBytes),
                  Table::fmtKB(r_ga.buffer.weightBytes),
                  Table::fmtSci(ga_cost)});

        std::printf("%s:\n", name.c_str());
        t.print();
        std::printf("\n");
    }
    std::printf("Expected shape (paper Table 1): Cocco lowest cost per "
                "model;\nRandWire/GoogleNet prefer small buffers, NasNet "
                "prefers large.\n");
    return 0;
}
