/**
 * @file
 * Pinned performance basket (perf_diff gate input).
 *
 * Runs a fixed set of timed workloads — cold/warm GA evaluation
 * throughput, raw partitionCost assembly rate, a co-exploration wall
 * clock, incumbent-screened evaluation (pruning) vs. exhaustive
 * evaluation, the exploration-service drain rate, multi-tenant
 * schedule evaluation throughput, the racing portfolio's
 * time-to-target against the best solo algorithm, and the pareto-mode
 * frontier production rate — and writes one flat JSON snapshot:
 *
 *   {"schema_version":1, "generator":"bench_perf", "date":"...",
 *    "series":{"<name>":{"value":N,"unit":"...",
 *              "higher_is_better":bool}, ...}}
 *
 * CI diffs the snapshot against the committed BENCH_<date>.json
 * baseline with tools/perf_diff and fails on a >10% regression in any
 * series. Timed sections run best-of-N to damp scheduler noise.
 *
 * The basket also asserts the pruning contract while it measures it:
 * the screened and exhaustive streams must track the same incumbent
 * bit-for-bit, a pruned and an unpruned GA run must return the same
 * result, and the screening speedup must clear a 1.5x floor. Any
 * violation exits non-zero, so the CI perf job doubles as a
 * correctness gate.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/cocco.h"
#include "core/serialize.h"
#include "partition/repair.h"
#include "schedule/co_scheduler.h"
#include "search/operators.h"
#include "serve/job_manager.h"
#include "util/json.h"

using namespace cocco;
using namespace cocco::bench;

namespace {

struct Series
{
    std::string name;
    double value = 0.0;
    const char *unit = "";
    bool higherIsBetter = true;
};

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** GA co-exploration run on a fresh CostModel (no cross-run memo). */
struct GaRun
{
    double seconds = 0.0;
    SearchResult result;
};

GaRun
runGa(const Graph &g, const AcceleratorConfig &accel, int64_t budget,
      int population, uint64_t seed, bool pruning,
      const std::shared_ptr<EvalCache> &cache)
{
    CostModel model(g, accel);
    DseSpace space = DseSpace::paperSpace(BufferStyle::Shared);
    GaOptions opts;
    opts.population = population;
    opts.sampleBudget = budget;
    opts.seed = seed;
    opts.threads = 1;
    opts.pruning = pruning;
    opts.cacheEnabled = cache != nullptr;
    opts.cache = cache;
    GaRun r;
    double t0 = now();
    r.result = GeneticSearch(model, space, opts).run();
    r.seconds = now() - t0;
    return r;
}

bool
sameResult(const SearchResult &a, const SearchResult &b)
{
    if (a.bestCost != b.bestCost || a.samples != b.samples ||
        a.trace.size() != b.trace.size())
        return false;
    for (size_t i = 0; i < a.trace.size(); ++i)
        if (a.trace[i].sample != b.trace[i].sample ||
            a.trace[i].bestCost != b.trace[i].bestCost)
            return false;
    return true;
}

std::string
today()
{
    std::time_t t = std::time(nullptr);
    char buf[16];
    std::strftime(buf, sizeof(buf), "%Y-%m-%d", std::localtime(&t));
    return buf;
}

bool
writeSnapshot(const std::string &path, const std::vector<Series> &series)
{
    JsonWriter w;
    w.beginObject();
    w.field("schema_version", 1);
    w.field("generator", "bench_perf");
    w.field("date", today());
    w.key("series").beginObject();
    for (const Series &s : series) {
        w.key(s.name).beginObject();
        w.field("value", s.value);
        w.field("unit", s.unit);
        w.field("higher_is_better", s.higherIsBetter);
        w.endObject();
    }
    w.endObject();
    w.endObject();
    std::string doc = w.str();
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
    ok = std::fputc('\n', f) != EOF && ok;
    return std::fclose(f) == 0 && ok;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchArgs args = parseArgs(argc, argv, "pinned performance basket");
    std::string out = "BENCH_" + today() + ".json";
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
            out = argv[i + 1];
    banner("Pinned performance basket (perf_diff gate input)", args);

    const int repeats = 3; // timed sections keep their best repeat
    AcceleratorConfig accel = paperAccelerator();
    Graph g = buildModel("GoogleNet");
    int64_t budget = args.full ? 20000 : 3000;
    int population = args.full ? 500 : 50;
    bool failed = false;
    std::vector<Series> series;

    // --- Cold / warm GA evaluation throughput + cache hit rate. ---
    {
        double cold_rate = 0.0, warm_rate = 0.0, hit_rate = 0.0;
        double cold_s = 0.0, warm_s = 0.0;
        for (int r = 0; r < repeats; ++r) {
            auto cache = std::make_shared<EvalCache>();
            GaRun cold = runGa(g, accel, budget, population, args.seed,
                               true, cache);
            GaRun warm = runGa(g, accel, budget, population, args.seed,
                               true, cache);
            double cr = cold.result.samples / cold.seconds;
            double wr = warm.result.samples / warm.seconds;
            if (cr > cold_rate) {
                cold_rate = cr;
                cold_s = cold.seconds;
            }
            if (wr > warm_rate) {
                warm_rate = wr;
                warm_s = warm.seconds;
                hit_rate = warm.result.cacheStats.hitRate();
            }
        }
        std::printf("cold: %lld evals in %.2fs, warm: %.2fs "
                    "(hit rate %.0f%%)\n",
                    static_cast<long long>(budget), cold_s, warm_s,
                    100.0 * hit_rate);
        series.push_back({"eval_throughput_cold", cold_rate, "evals/s",
                          true});
        series.push_back({"eval_throughput_warm", warm_rate, "evals/s",
                          true});
        series.push_back({"cache_hit_rate_warm", hit_rate, "ratio", true});
    }

    // --- Raw partitionCost assembly rate on a warmed profile memo. ---
    {
        CostModel model(g, accel);
        DseSpace space = DseSpace::paperSpace(BufferStyle::Shared);
        BufferConfig buf = space.fixed;
        buf.style = BufferStyle::Shared;
        buf.sharedBytes = 2 * 1024 * 1024;
        Rng rng(args.seed);
        std::vector<Partition> parts;
        for (int i = 0; i < 64; ++i) {
            Genome x = randomGenome(g, space, rng);
            parts.push_back(repairToCapacity(g, std::move(x.part), model,
                                             buf));
        }
        for (const Partition &p : parts) // warm the memo
            model.partitionCost(p, buf);
        double best = 0.0;
        for (int r = 0; r < repeats; ++r) {
            int calls = 0;
            double t0 = now(), elapsed = 0.0;
            while (elapsed < 0.2) {
                for (const Partition &p : parts)
                    model.partitionCost(p, buf);
                calls += static_cast<int>(parts.size());
                elapsed = now() - t0;
            }
            best = std::max(best, calls / elapsed);
        }
        std::printf("partitionCost: %.0f calls/s (warm memo)\n", best);
        series.push_back({"partition_cost_per_sec", best, "calls/s", true});
    }

    // --- Co-exploration wall clock (the CLI's default GA path). ---
    {
        double best_s = 0.0;
        double objective = 0.0;
        for (int r = 0; r < repeats; ++r) {
            GaRun run = runGa(g, accel, budget, population, args.seed,
                              true, std::make_shared<EvalCache>());
            if (best_s == 0.0 || run.seconds < best_s)
                best_s = run.seconds;
            objective = run.result.bestCost;
        }
        std::printf("coexplore: %lld samples in %.2fs (objective %.4g)\n",
                    static_cast<long long>(budget), best_s, objective);
        series.push_back({"coexplore_wall_seconds", best_s, "s", false});
    }

    // --- Incumbent-screened vs exhaustive evaluation (pruning). ---
    {
        DseSpace space = DseSpace::paperSpace(BufferStyle::Shared);
        int64_t n = args.full ? 20000 : 3000;
        Rng rng(args.seed * 77 + 1);
        std::vector<Genome> stream;
        for (int64_t i = 0; i < n; ++i)
            stream.push_back(randomGenome(g, space, rng));

        // Incumbent from a short exhaustive warm-up.
        double incumbent = kInfeasiblePenalty;
        {
            CostModel model(g, accel);
            EvalOptions opts;
            opts.cacheEnabled = false;
            opts.threads = 1;
            EvalEngine eng(model, space, opts);
            for (size_t i = 0; i < 100 && i < stream.size(); ++i) {
                Genome t = stream[i];
                incumbent = std::min(incumbent, eng.evaluate(t));
            }
        }

        double rate_off = 0.0, rate_on = 0.0;
        double best_off = 0.0, best_on = 0.0;
        uint64_t pruned = 0, inc_hits = 0;
        for (int r = 0; r < repeats; ++r) {
            { // exhaustive
                CostModel model(g, accel);
                EvalOptions opts;
                opts.cacheEnabled = false;
                opts.threads = 1;
                opts.pruning = false;
                EvalEngine eng(model, space, opts);
                std::vector<Genome> gs = stream;
                double best = incumbent;
                double t0 = now();
                for (Genome &x : gs)
                    best = std::min(best, eng.evaluate(x));
                rate_off = std::max(rate_off, n / (now() - t0));
                best_off = best;
            }
            { // screened against the running incumbent
                CostModel model(g, accel);
                EvalOptions opts;
                opts.cacheEnabled = false;
                opts.threads = 1;
                opts.pruning = true;
                EvalEngine eng(model, space, opts);
                std::vector<Genome> gs = stream;
                double best = incumbent;
                double t0 = now();
                for (Genome &x : gs) {
                    bool skipped = false;
                    double c = eng.evaluateBounded(x, best, &skipped);
                    if (!skipped)
                        best = std::min(best, c);
                }
                rate_on = std::max(rate_on, n / (now() - t0));
                best_on = best;
                pruned = eng.boundRejections();
                inc_hits = eng.recordBlocksReused();
            }
        }
        double speedup = rate_off > 0.0 ? rate_on / rate_off : 0.0;
        std::printf("pruning off: %.0f evals/s, on: %.0f evals/s "
                    "(%.2fx; %llu pruned, %llu incremental block hits)\n",
                    rate_off, rate_on, speedup,
                    static_cast<unsigned long long>(pruned),
                    static_cast<unsigned long long>(inc_hits));
        if (best_off != best_on) {
            std::fprintf(stderr,
                         "FAIL: pruning changed the search result "
                         "(best %.17g vs %.17g)\n",
                         best_off, best_on);
            failed = true;
        }
        if (speedup < 1.5) {
            std::fprintf(stderr,
                         "FAIL: prune_speedup %.2fx below the 1.5x floor\n",
                         speedup);
            failed = true;
        }
        series.push_back({"eval_rate_unpruned", rate_off, "evals/s", true});
        series.push_back({"eval_rate_pruned", rate_on, "evals/s", true});
        series.push_back({"prune_speedup", speedup, "ratio", true});
    }

    // --- End-to-end identity: a pruned and an unpruned GA run. ---
    {
        GaRun off = runGa(g, accel, std::min<int64_t>(budget, 2000),
                          population, args.seed, false, nullptr);
        GaRun on = runGa(g, accel, std::min<int64_t>(budget, 2000),
                         population, args.seed, true, nullptr);
        if (!sameResult(off.result, on.result)) {
            std::fprintf(stderr,
                         "FAIL: pruning changed the search result "
                         "(best %.17g vs %.17g)\n",
                         off.result.bestCost, on.result.bestCost);
            failed = true;
        }
    }

    // --- Exploration-service throughput (JobManager drain rate). ---
    {
        int n_jobs = args.full ? 100 : 20;
        double best_rate = 0.0;
        for (int r = 0; r < repeats; ++r) {
            JobManagerOptions mopts;
            mopts.workers = 2;
            mopts.threadBudget = 2;
            mopts.queueCapacity = n_jobs;
            JobManager manager(mopts);
            double t0 = now();
            for (int i = 0; i < n_jobs; ++i) {
                SearchSpec spec;
                spec.algo = "ga";
                spec.workload.model = "GoogleNet";
                spec.eval.sampleBudget = 150;
                spec.eval.seed = 1 + static_cast<uint64_t>(i % 4);
                spec.eval.threads = 1;
                spec.ga.population = 25;
                std::string err;
                if (manager.submit(spec, "bench", &err) < 0) {
                    std::fprintf(stderr, "FAIL: serve submit: %s\n",
                                 err.c_str());
                    failed = true;
                    break;
                }
            }
            manager.drain();
            for (const JobStatus &s : manager.jobs())
                if (s.state != JobState::Done) {
                    std::fprintf(stderr,
                                 "FAIL: serve job %lld ended %s\n",
                                 static_cast<long long>(s.id),
                                 jobStateName(s.state));
                    failed = true;
                }
            best_rate = std::max(best_rate, n_jobs / (now() - t0));
        }
        std::printf("serve: %d jobs drained at %.1f jobs/s (2 workers)\n",
                    n_jobs, best_rate);
        series.push_back({"serve_jobs_per_sec", best_rate, "jobs/s",
                          true});
    }

    // --- Co-schedule evaluation throughput (ScheduleCostModel). ---
    // A 2-tenant set on the big-little preset: search once per
    // strategy (asserting the searched placement is no worse than the
    // myopic baseline), then time pure schedule evaluations over
    // every placement of the searched buffer/partitions.
    {
        WorkloadSet set;
        TenantSpec vision;
        vision.name = "vision";
        vision.workload.model = "GoogleNet";
        vision.arrivalRateHz = 40.0;
        vision.slaLatencyMs = 18.0;
        TenantSpec mobile;
        mobile.name = "mobile";
        mobile.workload.model = "MobileNetV2";
        mobile.arrivalRateHz = 25.0;
        mobile.slaLatencyMs = 30.0;
        set.tenants = {vision, mobile};
        std::vector<Graph> graphs;
        graphs.push_back(buildModel("GoogleNet"));
        graphs.push_back(buildModel("MobileNetV2"));

        DeploymentSpec dspec;
        dspec.enabled = true;
        dspec.preset = "big-little";
        DeploymentConfig dep;
        std::string err;
        if (!resolveDeployment(dspec, accel, &dep, &err)) {
            std::fprintf(stderr, "FAIL: coschedule deployment: %s\n",
                         err.c_str());
            failed = true;
        } else {
            SearchSpec sspec;
            sspec.eval.sampleBudget = args.full ? 2000 : 400;
            sspec.eval.seed = args.seed;
            sspec.ga.population = 12;

            sspec.algo = "greedy-place";
            ScheduleResult greedy =
                CoScheduler(graphs, set, dep).explore(sspec);
            sspec.algo = "ga";
            CoScheduler sched(graphs, set, dep);
            ScheduleResult searched = sched.explore(sspec);
            if (searched.objective > greedy.objective) {
                std::fprintf(stderr,
                             "FAIL: searched schedule (%.17g) worse "
                             "than greedy-place (%.17g)\n",
                             searched.objective, greedy.objective);
                failed = true;
            }

            ScheduleCostModel &model = sched.model();
            const int cores = model.cores();
            double best_rate = 0.0;
            for (int r = 0; r < repeats; ++r) {
                int64_t evals = 0;
                double t0 = now(), elapsed = 0.0;
                while (elapsed < 0.2) {
                    Schedule s = searched.schedule;
                    for (int c0 = 0; c0 < cores; ++c0)
                        for (int c1 = 0; c1 < cores; ++c1) {
                            s.coreOf = {c0, c1};
                            model.evaluate(s);
                            ++evals;
                        }
                    elapsed = now() - t0;
                }
                best_rate = std::max(best_rate, evals / elapsed);
            }
            std::printf("coschedule: %.0f schedule evals/s "
                        "(2 tenants on big-little)\n",
                        best_rate);
            series.push_back({"coschedule_evals_per_sec", best_rate,
                              "evals/s", true});
        }
    }

    // --- Portfolio time-to-target vs. the best single algorithm. ---
    // Four solo runs (fresh model + cache each, threads=1) establish
    // the target: the best final cost any single algorithm reaches at
    // this budget. The portfolio then races the same four over ONE
    // shared cache (deterministic mode, so the basket is
    // reproducible) and must reach that target — shared-cache racing
    // must not regress the winner. The wall-clock floor scales the
    // best solo's time-to-target by the race overhead: with a core
    // per racer the portfolio tracks the winning solo, while on
    // smaller hosts the racers time-share the winner's core until the
    // losers are culled, so the floor widens by the racer count. The
    // committed snapshot + perf_diff tracks the raw seconds tightly.
    {
        struct ImproveLog final : SearchObserver
        {
            double t0 = 0.0;
            std::vector<std::pair<double, double>> hits; // (sec, cost)
            void
            onImprove(const TracePoint &tp) override
            {
                hits.emplace_back(now() - t0, tp.bestCost);
            }
        };
        auto timeToTarget = [](const ImproveLog &log, double target) {
            for (const auto &h : log.hits)
                if (h.second <= target)
                    return h.first;
            return -1.0;
        };

        const std::vector<std::string> racers{"ga", "sa", "ts-random",
                                              "ts-grid"};
        std::vector<ImproveLog> logs(racers.size());
        double min_best = kInfeasiblePenalty;
        for (size_t i = 0; i < racers.size(); ++i) {
            SearchSpec spec = searchSpec(racers[i], args);
            spec.eval.coExplore = true;
            spec.eval.sampleBudget = budget;
            spec.eval.threads = 1;
            spec.eval.observer = &logs[i];
            CoccoFramework cocco(g, accel);
            logs[i].t0 = now();
            CoccoResult r = cocco.explore(spec);
            min_best = std::min(min_best, r.objective);
        }
        double best_solo = -1.0;
        for (const ImproveLog &log : logs) {
            double t = timeToTarget(log, min_best);
            if (t >= 0.0 && (best_solo < 0.0 || t < best_solo))
                best_solo = t;
        }

        SearchSpec pspec = searchSpec("portfolio", args);
        pspec.eval.coExplore = true;
        pspec.eval.sampleBudget = budget;
        pspec.eval.threads = static_cast<int>(racers.size());
        pspec.portfolio.racers = racers;
        pspec.portfolio.deterministicRace = true;
        pspec.portfolio.checkEvals = 250;
        pspec.portfolio.warmupEvals = 500;
        ImproveLog plog;
        pspec.eval.observer = &plog;
        CoccoFramework cocco(g, accel);
        plog.t0 = now();
        CoccoResult pr = cocco.explore(pspec);
        double ttt = timeToTarget(plog, min_best);

        const char *winner = "?";
        for (const RacerStats &rs : pr.racers)
            if (rs.winner)
                winner = rs.algo.c_str();
        std::printf("portfolio: target %.6g reached in %.2fs "
                    "(best solo %.2fs, winner %s, %lld total evals)\n",
                    min_best, ttt, best_solo, winner,
                    static_cast<long long>(pr.samples));

        if (pr.objective > min_best) {
            std::fprintf(stderr,
                         "FAIL: portfolio winner (%.17g) regressed the "
                         "best solo result (%.17g)\n",
                         pr.objective, min_best);
            failed = true;
        }
        if (ttt < 0.0) {
            std::fprintf(stderr, "FAIL: portfolio never reached the "
                                 "best solo target\n");
            failed = true;
        } else if (best_solo >= 0.0) {
            unsigned cores = std::thread::hardware_concurrency();
            double oversub = cores != 0 && cores < racers.size()
                                 ? static_cast<double>(racers.size())
                                 : 1.0;
            double allowed = best_solo * 1.5 * oversub;
            if (ttt > allowed) {
                std::fprintf(stderr,
                             "FAIL: portfolio time-to-target %.2fs "
                             "above the %.2fs floor (best solo %.2fs)\n",
                             ttt, allowed, best_solo);
                failed = true;
            }
        }
        series.push_back({"portfolio_time_to_target_seconds", ttt, "s",
                          false});
    }

    // --- Pareto frontier throughput (`"mode": "pareto"`). ---
    // One frontier-producing co-exploration: the non-dominated
    // {buffer, energy, latency} archive rides the eval loop, so the
    // series prices the whole trade-off curve, not one scalarization.
    {
        double best_rate = 0.0, best_s = 0.0;
        size_t points = 0;
        for (int r = 0; r < repeats; ++r) {
            SearchSpec spec = searchSpec("ga", args);
            spec.paretoMode = true;
            spec.eval.coExplore = true;
            spec.eval.sampleBudget = budget;
            spec.eval.threads = 1;
            spec.eval.alpha = 2e-3;
            spec.eval.metric = Metric::Energy;
            CoccoFramework cocco(g, accel);
            double t0 = now();
            CoccoResult res = cocco.explore(spec);
            double s = now() - t0;
            double rate = static_cast<double>(res.frontier.size()) / s;
            if (rate > best_rate) {
                best_rate = rate;
                best_s = s;
                points = res.frontier.size();
            }
        }
        std::printf("pareto: %zu frontier points in %.2fs "
                    "(%.1f points/s)\n",
                    points, best_s, best_rate);
        if (points < 3) {
            std::fprintf(stderr, "FAIL: pareto frontier resolved only "
                                 "%zu points (need >= 3)\n",
                         points);
            failed = true;
        }
        series.push_back({"pareto_frontier_points_per_sec", best_rate,
                          "points/s", true});
    }

    if (!writeSnapshot(out, series)) {
        std::fprintf(stderr, "error: could not write %s\n", out.c_str());
        return 1;
    }
    std::printf("\nsnapshot: %s (%zu series) — diff against a baseline "
                "with perf_diff\n",
                out.c_str(), series.size());
    return failed ? 1 : 0;
}
