/**
 * @file
 * Exploration-service stress bench: hundreds of concurrent small
 * specs hammered through one warm `cocco serve` process — HTTP
 * submissions from several client threads, all jobs sharing the
 * process-wide EvalCache.
 *
 * Correctness gates (exit non-zero on any violation):
 *  - every submitted job completes (state "done");
 *  - every job's result document is byte-identical to a solo
 *    cold-cache run of the same spec through CoccoFramework — the
 *    shared warm cache and the thread-budget ledger must never change
 *    a result, only its latency;
 *  - the shared cache actually shares: lifetime hit-rate > 0 (the
 *    workload cycles a handful of distinct specs, so later jobs must
 *    hit entries warmed by earlier ones).
 *
 * Reports jobs/sec through the full HTTP round trip and the shared
 * cache hit-rate; --metrics-out writes the schema-v1 document.
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/cocco.h"
#include "core/serialize.h"
#include "serve/http_server.h"
#include "serve/job_manager.h"
#include "serve/service.h"
#include "util/json.h"
#include "util/logging.h"

using namespace cocco;
using namespace cocco::bench;

namespace {

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** The solo reference: the spec document run cold through the same
 *  path `cocco run` takes, cache off. */
std::string
soloResultDoc(const std::string &specText)
{
    SearchSpec spec;
    std::string err;
    if (!parseRunSpecText(specText, &spec, &err))
        fatal("bench spec does not parse: %s", err.c_str());
    spec.eval.cacheEnabled = false;
    Graph g;
    if (!resolveWorkload(spec.workload, &g, &err))
        fatal("%s", err.c_str());
    AcceleratorConfig accel;
    if (!resolvePlatform(spec.platform, &accel, &err))
        fatal("%s", err.c_str());
    CoccoFramework cocco(g, accel);
    CoccoResult r = cocco.explore(spec);
    return resultToJson(g, r);
}

} // namespace

int
main(int argc, char **argv)
{
    BenchArgs args = parseArgs(argc, argv, "exploration-service stress");
    banner("Exploration service: concurrent jobs over one warm cache",
           args);

    // A handful of distinct specs cycled across many submissions —
    // distinct enough to exercise admission/scheduling, repetitive
    // enough that the shared cache must produce hits.
    const int64_t samples = args.full ? 600 : 150;
    std::vector<std::string> specTexts;
    for (uint64_t s = 1; s <= 4; ++s)
        specTexts.push_back(strprintf(
            "{\"algo\":\"ga\",\"model\":\"GoogleNet\",\"samples\":%lld,"
            "\"seed\":%llu,\"threads\":1,\"ga\":{\"population\":25}}",
            static_cast<long long>(samples),
            static_cast<unsigned long long>(args.seed * 10 + s)));

    std::printf("solo baselines (%zu specs, cache off)...\n",
                specTexts.size());
    std::vector<std::string> expected;
    for (const std::string &text : specTexts)
        expected.push_back(soloResultDoc(text));

    const int totalJobs = args.full ? 240 : 60;
    const int clients = 6;

    JobManagerOptions mopts;
    mopts.workers = 4;
    mopts.threadBudget = 4;
    mopts.queueCapacity = totalJobs;
    JobManager manager(mopts);

    HttpServer server([&manager](const HttpRequest &req) {
        return serveHttpRequest(manager, req, nullptr);
    });
    std::string err;
    if (!server.start(0, &err))
        fatal("%s", err.c_str());
    int port = server.port();
    std::printf("serving on 127.0.0.1:%d, %d jobs from %d clients...\n",
                port, totalJobs, clients);

    // Client threads submit over real HTTP; each records which spec
    // every accepted job id came from for the identity check.
    std::vector<std::vector<std::pair<int64_t, size_t>>> submitted(
        clients);
    std::atomic<int> failures{0};
    double t0 = now();
    std::vector<std::thread> pool;
    for (int c = 0; c < clients; ++c) {
        pool.emplace_back([&, c] {
            for (int i = c; i < totalJobs; i += clients) {
                size_t specIdx = static_cast<size_t>(i) %
                                 specTexts.size();
                int status = 0;
                std::string body, ferr;
                if (!httpFetch("127.0.0.1", port, "POST", "/jobs",
                               specTexts[specIdx], &status, &body,
                               &ferr) ||
                    status != 202) {
                    std::fprintf(stderr, "FAIL: submit %d: %s (%d)\n", i,
                                 ferr.c_str(), status);
                    ++failures;
                    continue;
                }
                JsonValue doc;
                std::string perr;
                if (!parseJson(body, &doc, &perr) || !doc.isObject() ||
                    !doc.find("job")) {
                    std::fprintf(stderr, "FAIL: submit reply: %s\n",
                                 body.c_str());
                    ++failures;
                    continue;
                }
                submitted[c].emplace_back(doc.find("job")->integer(),
                                          specIdx);
            }
        });
    }
    for (std::thread &t : pool)
        t.join();
    manager.drain();
    double wall = now() - t0;
    double jobsPerSec = totalJobs / wall;

    // Every job completed, every result bit-identical to its solo run.
    int mismatches = 0;
    for (const auto &client : submitted) {
        for (const auto &[id, specIdx] : client) {
            JobStatus s = manager.status(id);
            if (s.state != JobState::Done) {
                std::fprintf(stderr, "FAIL: job %lld ended %s (%s)\n",
                             static_cast<long long>(id),
                             jobStateName(s.state), s.error.c_str());
                ++failures;
                continue;
            }
            int status = 0;
            std::string body, ferr;
            if (!httpFetch("127.0.0.1", port, "GET",
                           strprintf("/jobs/%lld/result",
                                     static_cast<long long>(id)),
                           "", &status, &body, &ferr) ||
                status != 200) {
                std::fprintf(stderr, "FAIL: fetch job %lld: %s (%d)\n",
                             static_cast<long long>(id), ferr.c_str(),
                             status);
                ++failures;
                continue;
            }
            if (body != expected[specIdx]) {
                std::fprintf(stderr,
                             "FAIL: job %lld differs from its solo run "
                             "(spec %zu)\n",
                             static_cast<long long>(id), specIdx);
                ++mismatches;
            }
        }
    }
    server.stop();

    EvalCacheStats stats = manager.cacheStats();
    std::printf("%d jobs in %.2fs: %.1f jobs/s, shared-cache hit rate "
                "%.1f%% (%llu hits / %llu misses)\n",
                totalJobs, wall, jobsPerSec, 100.0 * stats.hitRate(),
                static_cast<unsigned long long>(stats.hits),
                static_cast<unsigned long long>(stats.misses));
    if (mismatches)
        std::fprintf(stderr, "FAIL: %d result(s) not bit-identical\n",
                     mismatches);
    if (stats.hitRate() <= 0.0) {
        std::fprintf(stderr, "FAIL: shared cache produced no hits — "
                             "jobs are not warming each other\n");
        ++failures;
    }

    RunMetrics m;
    m.name = "serve-stress";
    m.model = "GoogleNet";
    m.threads = mopts.threadBudget;
    m.seed = args.seed;
    m.samples = static_cast<int64_t>(totalJobs) * samples;
    m.bestCost = 0.0;
    m.wallSeconds = wall;
    m.cacheEnabled = true;
    m.cache = stats;
    m.extra.emplace_back("jobs_per_sec", jobsPerSec);
    m.extra.emplace_back("jobs", totalJobs);
    writeMetrics(args, "bench_serve", {m});

    return failures.load() || mismatches ? 1 : 0;
}
