/**
 * @file
 * Figure 14 reproduction: the alpha sweep. Formula 2's preference
 * hyper-parameter trades buffer capacity against energy: larger alpha
 * buys more memory for less energy. For each of the four models we
 * co-explore at alpha in {5e-4, 1e-3, 2e-3, 5e-3, 1e-2} and print the
 * chosen capacity and the energy normalized to the alpha=5e-4 result.
 *
 * Expected shape: capacity grows (weakly) and normalized energy falls
 * (weakly) with alpha; NasNet demands far more capacity than the rest.
 */

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/cocco.h"
#include "util/table.h"

using namespace cocco;
using namespace cocco::bench;

int
main(int argc, char **argv)
{
    BenchArgs args = parseArgs(argc, argv, "Figure 14: alpha trade-off");
    banner("Figure 14: energy vs capacity preference (alpha sweep)", args);

    AcceleratorConfig accel = paperAccelerator();
    const std::vector<double> alphas{5e-4, 1e-3, 2e-3, 5e-3, 1e-2};

    for (const std::string &name : coExploreModels()) {
        Graph g = buildModel(name);
        CoccoFramework cocco(g, accel);

        Table t({"alpha", "capacity (MB)", "energy (mJ)", "energy norm."});
        double base_energy = 0;
        for (double alpha : alphas) {
            GaOptions o;
            o.sampleBudget = args.coExploreBudget();
            o.population = args.population();
            o.alpha = alpha;
            o.metric = Metric::Energy;
            o.seed = args.seed;
            CoccoResult r = cocco.coExplore(BufferStyle::Shared, o);
            double energy = r.cost.energyPj;
            if (base_energy == 0)
                base_energy = energy;
            t.addRow({Table::fmtDouble(alpha, 4),
                      Table::fmtDouble(
                          static_cast<double>(r.buffer.sharedBytes) /
                              1048576.0,
                          2),
                      Table::fmtDouble(energy / 1e9, 3),
                      Table::fmtDouble(energy / base_energy, 3)});
        }
        std::printf("%s:\n", name.c_str());
        t.print();
        std::printf("\n");
    }
    std::printf("Expected shape: larger alpha -> larger capacity, lower "
                "energy;\nNasNet needs the largest buffers (memory-"
                "intensive, complex structure).\n");
    return 0;
}
