/**
 * @file
 * Figure 14 reproduction: the alpha trade-off, from ONE pareto run.
 * Formula 2's preference hyper-parameter trades buffer capacity
 * against energy: larger alpha buys more memory for less energy.
 *
 * The original harness re-ran the co-exploration once per alpha in
 * {5e-4, 1e-3, 2e-3, 5e-3, 1e-2} — five searches per model. This one
 * runs a single pareto-mode search per model (the non-dominated
 * archive rides the evaluation loop), projects the frontier to the
 * (capacity, energy) plane, and reads all five alphas off it with
 * selectByAlpha — the same table at >= 3x fewer evaluations.
 *
 * Expected shape: capacity grows (weakly) and normalized energy falls
 * (weakly) with alpha; NasNet demands far more capacity than the rest.
 * The shape is asserted, not just printed: a violated expectation
 * exits non-zero so CI catches a frontier regression.
 */

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/cocco.h"
#include "search/pareto.h"
#include "util/table.h"

using namespace cocco;
using namespace cocco::bench;

namespace {

int g_failures = 0;

void
check(bool ok, const char *what, const std::string &model)
{
    if (!ok) {
        std::printf("ASSERT FAILED (%s): %s\n", model.c_str(), what);
        ++g_failures;
    }
}

} // namespace

int
main(int argc, char **argv)
{
    BenchArgs args = parseArgs(argc, argv, "Figure 14: alpha trade-off");
    banner("Figure 14: energy vs capacity preference (one pareto run)",
           args);

    AcceleratorConfig accel = paperAccelerator();
    const std::vector<double> alphas{5e-4, 1e-3, 2e-3, 5e-3, 1e-2};
    std::vector<RunMetrics> metrics;

    for (const std::string &name : coExploreModels()) {
        Graph g = buildModel(name);
        CoccoFramework cocco(g, accel);

        // One frontier search replaces the old per-alpha sweep; the
        // search itself is scalarized at the sweep's middle alpha,
        // while the archive collects the raw trade-off points.
        SearchSpec spec;
        spec.algo = "ga";
        spec.style = BufferStyle::Shared;
        spec.paretoMode = true;
        spec.eval.coExplore = true;
        // Spend part of the sweep's eval savings on frontier
        // coverage: 5/3 of one sweep step is the largest budget that
        // still keeps the >= 3x economy over the 5-alpha sweep.
        spec.eval.sampleBudget = args.coExploreBudget() * 5 / 3;
        spec.eval.alpha = 2e-3;
        spec.eval.metric = Metric::Energy;
        spec.eval.seed = args.seed;
        spec.ga.population = args.population();
        CoccoResult r = cocco.explore(spec);

        // The headline economics: the old harness spent one full
        // budget per alpha; this one spends a single budget for the
        // whole table.
        int64_t oldEvals =
            static_cast<int64_t>(alphas.size()) * args.coExploreBudget();
        check(r.samples * 3 <= oldEvals,
              "one pareto run must cost >= 3x fewer evals than the "
              "old 5-alpha sweep",
              name);
        check(r.frontier.size() >= 3,
              "frontier must resolve >= 3 trade-off points", name);
        check(r.hypervolume > 0.0, "frontier hypervolume must be > 0",
              name);

        // Project to (capacity, energy) and read the alphas off it.
        std::vector<SamplePoint> pts;
        for (const ParetoEntry &e : r.frontier) {
            SamplePoint p;
            p.sample = e.sample;
            p.metric = e.energyPj;
            p.bufferBytes = e.bufferBytes;
            pts.push_back(p);
        }
        std::vector<ParetoPoint> front = paretoFront(pts);

        Table t({"alpha", "capacity (MB)", "energy (mJ)", "energy norm."});
        double base_energy = 0;
        int64_t prev_capacity = 0;
        double prev_energy = 0;
        for (double alpha : alphas) {
            const ParetoPoint &p = selectByAlpha(front, alpha);
            if (base_energy == 0)
                base_energy = p.metric;
            // Figure 14's monotone shape, point by point.
            if (prev_capacity != 0) {
                check(p.bufferBytes >= prev_capacity,
                      "capacity must grow weakly with alpha", name);
                check(p.metric <= prev_energy,
                      "energy must fall weakly with alpha", name);
            }
            prev_capacity = p.bufferBytes;
            prev_energy = p.metric;
            t.addRow({Table::fmtDouble(alpha, 4),
                      Table::fmtDouble(
                          static_cast<double>(p.bufferBytes) / 1048576.0,
                          2),
                      Table::fmtDouble(p.metric / 1e9, 3),
                      Table::fmtDouble(p.metric / base_energy, 3)});
        }
        std::printf("%s: frontier %zu points, hypervolume %.4f, "
                    "%lld evals (old sweep: %lld)\n",
                    name.c_str(), r.frontier.size(), r.hypervolume,
                    static_cast<long long>(r.samples),
                    static_cast<long long>(oldEvals));
        t.print();
        std::printf("\n");

        RunMetrics m;
        m.name = "fig14-pareto";
        m.model = name;
        m.seed = args.seed;
        m.samples = r.samples;
        m.bestCost = r.objective;
        fillResultMetrics(r, /*paretoMode=*/true, &m);
        m.extra.emplace_back("old_sweep_evals",
                             static_cast<double>(oldEvals));
        metrics.push_back(std::move(m));
    }
    std::printf("Expected shape: larger alpha -> larger capacity, lower "
                "energy;\nNasNet needs the largest buffers (memory-"
                "intensive, complex structure).\n");
    if (!writeMetrics(args, "bench_fig14_alpha", metrics))
        return 1;
    if (g_failures) {
        std::printf("%d assertion(s) FAILED\n", g_failures);
        return 1;
    }
    std::printf("all frontier assertions passed\n");
    return 0;
}
