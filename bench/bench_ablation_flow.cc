/**
 * @file
 * Ablation: consumption-centric vs production-centric tile flow
 * (the Figure 4 design point). For every size-3 window of each
 * model's topological order that forms a connected subgraph, derive
 * both schemes and report the activation-footprint inflation of the
 * production-centric baseline, plus the number of subgraphs that stop
 * fitting the 1MB global buffer.
 *
 * Also ablates the in-situ split repair (Section 4.4.4): GA with and
 * without capacity tuning at evaluation time.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/cocco.h"
#include "graph/algorithms.h"
#include "tileflow/footprint.h"
#include "tileflow/production.h"
#include "util/table.h"

using namespace cocco;
using namespace cocco::bench;

int
main(int argc, char **argv)
{
    BenchArgs args = parseArgs(argc, argv,
                               "Ablation: tile flow and in-situ tuning");
    banner("Ablation 1: consumption- vs production-centric footprints",
           args);

    BufferConfig buf = paperFixedBuffer();

    Table t({"model", "subgraphs", "median inflation", "max inflation",
             "extra misfits"});
    for (const std::string &name : coExploreModels()) {
        Graph g = buildModel(name);
        std::vector<double> inflation;
        int extra_misfit = 0;
        int count = 0;
        for (NodeId v = 0; v + 2 < g.size(); ++v) {
            std::vector<NodeId> sub{v, v + 1, v + 2};
            if (!isWeaklyConnected(g, sub))
                continue;
            bool has_input = false;
            for (NodeId u : sub)
                if (g.isInput(u))
                    has_input = true;
            if (has_input)
                continue;
            ExecutionScheme cons = bestScheme(g, sub);
            int in_tile = 1;
            for (const auto &ns : cons.nodes)
                if (ns.external)
                    in_tile = std::max(in_tile, std::max(ns.xH, ns.xW));
            ExecutionScheme prod = deriveProductionScheme(g, sub, in_tile);
            ++count;
            inflation.push_back(
                static_cast<double>(prod.actFootprintBytes) /
                static_cast<double>(cons.actFootprintBytes));
            if (prod.actFootprintBytes > buf.actBytes &&
                cons.actFootprintBytes <= buf.actBytes)
                ++extra_misfit;
        }
        std::sort(inflation.begin(), inflation.end());
        double median = inflation.empty() ? 1.0
                                          : inflation[inflation.size() / 2];
        double mx = inflation.empty() ? 1.0 : inflation.back();
        t.addRow({name, Table::fmtInt(count), Table::fmtDouble(median, 3),
                  Table::fmtDouble(mx, 2), Table::fmtInt(extra_misfit)});
    }
    t.print();
    std::printf("\nInflation >= 1.0 by construction; large maxima appear at "
                "unbalanced branches\n(the Figure 4 pathology).\n\n");

    banner("Ablation 2: in-situ split repair during GA evaluation", args);
    Table t2({"model", "with in-situ", "without in-situ"});
    for (const std::string &name : {std::string("ResNet50"),
                                    std::string("GoogleNet")}) {
        Graph g = buildModel(name);
        AcceleratorConfig a2 = paperAccelerator();
        CostModel model(g, a2);
        DseSpace space = DseSpace::paperSpace(BufferStyle::Shared);

        GaOptions on;
        on.sampleBudget = args.coExploreBudget() / 2;
        on.population = args.population();
        on.seed = args.seed;
        on.inSituSplit = true;
        SearchResult r_on = GeneticSearch(model, space, on).run();

        GaOptions off = on;
        off.inSituSplit = false;
        SearchResult r_off = GeneticSearch(model, space, off).run();

        t2.addRow({name, Table::fmtSci(r_on.bestCost),
                   r_off.bestCost >= kInfeasiblePenalty
                       ? "no feasible sample"
                       : Table::fmtSci(r_off.bestCost)});
    }
    t2.print();
    std::printf("\nExpected shape: disabling in-situ tuning wastes samples "
                "on infeasible genomes\nand converges to a worse (or no) "
                "solution.\n\n");

    banner("Ablation 3: banked vs strict double-buffered weight prefetch",
           args);
    Table t3({"model", "banked cost", "strict cost", "strict penalty"});
    for (const std::string &name : {std::string("ResNet50"),
                                    std::string("GoogleNet")}) {
        Graph g = buildModel(name);
        double cost[2];
        for (int strict = 0; strict < 2; ++strict) {
            AcceleratorConfig a3 = paperAccelerator();
            a3.doubleBufferWeights = strict;
            CostModel model(g, a3);
            DseSpace space = DseSpace::paperSpace(BufferStyle::Separate);
            GaOptions o;
            o.sampleBudget = args.coExploreBudget() / 2;
            o.population = args.population();
            o.seed = args.seed;
            cost[strict] = GeneticSearch(model, space, o).run().bestCost;
        }
        t3.addRow({name, Table::fmtSci(cost[0]), Table::fmtSci(cost[1]),
                   Table::fmtPercent(cost[1] / cost[0] - 1.0)});
    }
    t3.print();
    std::printf("\nExpected shape: the strict co-residency constraint "
                "forces bigger weight buffers\nor finer partitions, so its "
                "optimized cost is never lower.\n");
    return 0;
}
