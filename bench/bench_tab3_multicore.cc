/**
 * @file
 * Table 3 reproduction: multi-core (1/2/4 cores) and batch (1/2/8)
 * evaluation with the energy-capacity co-optimized shared buffer per
 * configuration. Reports energy (mJ), latency (ms), and the chosen
 * per-core shared buffer size.
 *
 * Scale-out goes through the deployment subsystem (sim/deployment.h):
 * each configuration is a homogeneous deployment of the paper
 * platform behind the default crossbar — bit-identical to the old
 * direct AcceleratorConfig::cores loop, but on the same API a run
 * spec's "deployment" section uses. With --metrics-out, each cell
 * additionally records per-core utilization and the crossbar's
 * energy/latency share, so the Table 3 trajectory is machine-checkable.
 *
 * Expected shape: energy rises slightly with core count (crossbar
 * weight rotation) while latency drops sub-linearly; batch-8 energy
 * and latency grow sub-linearly in the batch (weights amortize); the
 * per-core buffer shrinks as cores share weights.
 */

#include <chrono>
#include <cstdio>

#include "bench_common.h"
#include "core/cocco.h"
#include "util/table.h"

using namespace cocco;
using namespace cocco::bench;

int
main(int argc, char **argv)
{
    BenchArgs args = parseArgs(argc, argv, "Table 3: multi-core and batch");
    banner("Table 3: multi-core / batch co-exploration (shared buffer)",
           args);

    std::vector<RunMetrics> metrics;
    for (const std::string &name : coExploreModels()) {
        Graph g = buildModel(name);
        Table t({"cores", "batch", "energy (mJ)", "latency (ms)",
                 "size (KB)"});
        for (int cores : {1, 2, 4}) {
            for (int batch : {1, 2, 8}) {
                AcceleratorConfig accel = paperAccelerator();
                accel.batch = batch;
                CoccoFramework cocco(g,
                                     homogeneousDeployment(accel, cores));

                GaOptions o;
                o.sampleBudget = args.coExploreBudget() / 4;
                o.population = args.population();
                o.alpha = 0.002;
                o.metric = Metric::Energy;
                o.seed = args.seed;
                auto t0 = std::chrono::steady_clock::now();
                CoccoResult r = cocco.coExplore(BufferStyle::Shared, o);

                t.addRow({Table::fmtInt(cores), Table::fmtInt(batch),
                          Table::fmtDouble(r.cost.energyPj / 1e9, 2),
                          Table::fmtDouble(r.cost.latencyMs(), 2),
                          Table::fmtInt(r.buffer.sharedBytes / 1024)});

                RunMetrics m;
                m.name = name + "-c" + std::to_string(cores) + "-b" +
                         std::to_string(batch);
                m.model = name;
                m.seed = args.seed;
                m.samples = r.samples;
                m.bestCost = r.objective;
                m.wallSeconds =
                    std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
                m.cacheEnabled = true;
                m.cache = r.cacheStats;
                m.hasDeployment = true;
                m.deployment = r.deployment;
                m.extra = {{"cores", static_cast<double>(cores)},
                           {"batch", static_cast<double>(batch)},
                           {"energy_mj", r.cost.energyPj / 1e9},
                           {"latency_ms", r.cost.latencyMs()}};
                metrics.push_back(std::move(m));
            }
            t.addRule();
        }
        std::printf("%s:\n", name.c_str());
        t.print();
        std::printf("\n");
    }
    std::printf("Expected shape (paper Table 3): dual-core energy slightly "
                "above single-core;\nlatency scales sub-linearly with cores"
                " and batch; per-core buffer shrinks with cores.\n");
    return writeMetrics(args, "bench_tab3_multicore", metrics) ? 0 : 1;
}
