/**
 * @file
 * Figure 3 reproduction: external memory access and average bandwidth
 * requirement when fusing L = 1 / 3 / 5 consecutive layers into
 * subgraphs, on ResNet50, GoogleNet, RandWire, and NasNet, with the
 * paper's 2TOPS core (1MB global buffer + 1.125MB weight buffer).
 *
 * The paper reports 42.3%..74.7% EMA reduction and 26.8%..67.8%
 * bandwidth reduction going from L=1 to L=5, with diminishing returns
 * after L=3; this harness prints the same rows plus the reductions.
 */

#include <cstdio>

#include "bench_common.h"
#include "models/models.h"
#include "partition/repair.h"
#include "sim/cost_model.h"
#include "util/table.h"

using namespace cocco;
using namespace cocco::bench;

int
main(int argc, char **argv)
{
    BenchArgs args = parseArgs(argc, argv, "Figure 3: layer-fusion effect");
    banner("Figure 3: EMA and avg bandwidth vs subgraph size (L)", args);

    AcceleratorConfig accel = paperAccelerator();
    BufferConfig buf = paperFixedBuffer();

    Table ema_t({"model", "L=1 EMA(MB)", "L=3 EMA(MB)", "L=5 EMA(MB)",
                 "L3 vs L1", "L5 vs L1"});
    Table bw_t({"model", "L=1 BW(GB/s)", "L=3 BW(GB/s)", "L=5 BW(GB/s)",
                "L3 vs L1", "L5 vs L1"});

    for (const std::string &name : coExploreModels()) {
        Graph g = buildModel(name);
        CostModel model(g, accel);

        double ema[3] = {0, 0, 0};
        double bw[3] = {0, 0, 0};
        const int ls[3] = {1, 3, 5};
        for (int i = 0; i < 3; ++i) {
            // Fixed-size fusion along topological order; capacity
            // repair splits anything that does not fit the buffers.
            Partition p = Partition::fixedRuns(g, ls[i]);
            p = repairToCapacity(g, std::move(p), model, buf);
            GraphCost c = model.partitionCost(p, buf);
            ema[i] = static_cast<double>(c.emaBytes) / (1024.0 * 1024.0);
            bw[i] = c.avgBwGBps;
        }

        auto pct = [](double base, double v) {
            return Table::fmtPercent((v - base) / base, 1);
        };
        ema_t.addRow({name, Table::fmtDouble(ema[0], 1),
                      Table::fmtDouble(ema[1], 1),
                      Table::fmtDouble(ema[2], 1), pct(ema[0], ema[1]),
                      pct(ema[0], ema[2])});
        bw_t.addRow({name, Table::fmtDouble(bw[0], 2),
                     Table::fmtDouble(bw[1], 2), Table::fmtDouble(bw[2], 2),
                     pct(bw[0], bw[1]), pct(bw[0], bw[2])});
    }

    std::printf("External memory access (paper: -42.3%%..-74.7%% at L=5):\n");
    ema_t.print();
    std::printf("\nAverage bandwidth requirement (paper: -26.8%%..-67.8%% "
                "at L=5):\n");
    bw_t.print();
    std::printf("\nExpected shape: large L=1 -> L=3 drop, marginal L=3 -> "
                "L=5 gain.\n");
    return 0;
}
