/**
 * @file
 * Figure 11 reproduction: graph-partition quality of Halide's greedy,
 * Irregular-NN's DP, Cocco's GA, and the exact enumeration, across
 * the eight evaluated models under the EMA-opt configuration (1MB
 * global buffer, 1.125MB weight buffer). EMA and bandwidth are
 * reported normalized to the Halide baseline, as in the paper.
 *
 * Expected shape: Cocco matches the enumeration optimum on the
 * simpler models and beats greedy/DP on the large irregular ones;
 * enumeration fails to complete on Transformer/GPT/RandWire-A/B.
 */

#include <cstdio>

#include "bench_common.h"
#include "core/cocco.h"
#include "partition/dp.h"
#include "partition/enumeration.h"
#include "partition/greedy.h"
#include "util/table.h"

using namespace cocco;
using namespace cocco::bench;

int
main(int argc, char **argv)
{
    BenchArgs args =
        parseArgs(argc, argv, "Figure 11: graph partition comparison");
    banner("Figure 11: EMA / bandwidth vs Halide (EMA-opt config)", args);

    AcceleratorConfig accel = paperAccelerator();
    BufferConfig buf = paperFixedBuffer();

    const std::vector<std::string> models{
        "VGG16", "ResNet50",  "ResNet152",  "GoogleNet",
        "Transformer", "GPT", "RandWire-A", "RandWire-B"};

    Table ema_t({"model", "Halide", "DP", "Cocco", "Enum"});
    Table bw_t({"model", "Halide", "DP", "Cocco", "Enum"});

    for (const std::string &name : models) {
        Graph g = buildModel(name);
        CostModel model(g, accel);

        Partition p_greedy = greedyPartition(g, model, buf, Metric::EMA);
        Partition p_dp = dpPartition(g, model, buf, Metric::EMA);

        GaOptions opts;
        opts.sampleBudget = args.partitionBudget();
        opts.population = args.population();
        opts.metric = Metric::EMA;
        opts.seed = args.seed;
        CoccoFramework cocco(g, accel);
        // Flexible initialization (paper Section 4.3 benefit 4): the
        // GA population is warm-started from the baselines' results
        // and fine-tunes from there.
        CoccoResult p_ga = cocco.partitionOnly(buf, opts,
                                               {p_greedy, p_dp});

        // Enumeration with a budget: completes on chain-like models,
        // reports n/a on the large irregular ones (as in the paper).
        EnumerationOptions eopts;
        eopts.stateBudget = args.full ? 1000000 : 20000;
        eopts.candidateBudget = args.full ? 10000000 : 400000;
        EnumerationResult en =
            enumeratePartition(g, model, buf, Metric::EMA, eopts);

        GraphCost c_greedy = model.partitionCost(p_greedy, buf);
        GraphCost c_dp = model.partitionCost(p_dp, buf);
        const GraphCost &c_ga = p_ga.cost;

        double base_ema = static_cast<double>(c_greedy.emaBytes);
        double base_bw = c_greedy.avgBwGBps;
        auto norm = [](double v, double base) {
            return Table::fmtDouble(v / base, 3);
        };

        std::string en_ema = "n/a (timeout)";
        std::string en_bw = "n/a (timeout)";
        if (en.complete) {
            GraphCost c_en = model.partitionCost(en.best, buf);
            en_ema = norm(static_cast<double>(c_en.emaBytes), base_ema);
            en_bw = norm(c_en.avgBwGBps, base_bw);
        }

        ema_t.addRow({name, "1.000",
                      norm(static_cast<double>(c_dp.emaBytes), base_ema),
                      norm(static_cast<double>(c_ga.emaBytes), base_ema),
                      en_ema});
        bw_t.addRow({name, "1.000", norm(c_dp.avgBwGBps, base_bw),
                     norm(c_ga.avgBwGBps, base_bw), en_bw});

        std::printf("  %s done (enum states=%lld%s)\n", name.c_str(),
                    static_cast<long long>(en.statesVisited),
                    en.complete ? "" : ", budget exceeded");
    }

    std::printf("\nEMA cost normalized to Halide (lower is better):\n");
    ema_t.print();
    std::printf("\nBandwidth requirement normalized to Halide:\n");
    bw_t.print();
    std::printf("\nExpected shape: Cocco <= 1.0 everywhere, matching Enum "
                "where it completes;\nEnum times out on Transformer/GPT/"
                "RandWire.\n");
    return 0;
}
