/**
 * @file
 * Figure 2 reproduction: the industrial-NPU survey. The paper's
 * figure plots performance vs. on-chip memory capacity for 16
 * commercial accelerators and tabulates their SRAM area ratios. The
 * data points are survey facts (from the cited HotChips/ISSCC talks),
 * so this harness reprints the series and derives the paper's three
 * observations from them, plus our SRAM-area model's estimate for
 * each part as a cross-check.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "mem/energy_model.h"
#include "util/table.h"

using namespace cocco;
using namespace cocco::bench;

namespace {

struct NpuEntry
{
    const char *name;
    const char *domain;    // inference / training
    double tflops;         // peak performance
    double capacityMB;     // on-chip SRAM
    double sramAreaRatio;  // fraction of die
};

// Survey data of paper Figure 2 (16 industrial NPUs).
const NpuEntry kSurvey[] = {
    {"T4", "inference", 65, 10, 0.0396},
    {"NVDLA", "inference", 2, 2.5, 0.1379},
    {"TPUv4i", "inference", 138, 144, 0.1470},
    {"FSD", "inference", 73.7, 64, 0.2010},
    {"NNP-I", "inference", 92, 75, 0.2746},
    {"Groq", "inference", 205, 220, 0.3239},
    {"Hanguang", "inference", 391, 394, 0.3686},
    {"Ascend910", "training", 256, 32, 0.0860},
    {"TPUv2", "training", 46, 32, 0.1092},
    {"Qualcomm-100", "training", 100, 144, 0.1176},
    {"NNP-T", "training", 119, 60, 0.1860},
    {"Wormhole", "training", 110, 120, 0.1868},
    {"Grayskull", "training", 92, 120, 0.2322},
    {"Dojo (1chip)", "training", 91, 440, 0.2801},
    {"IPUv2", "training", 250, 896, 0.4065},
    {"IPUv1", "training", 125, 304, 0.7880},
};

} // namespace

int
main(int argc, char **argv)
{
    BenchArgs args = parseArgs(argc, argv, "Figure 2: industrial NPU survey");
    banner("Figure 2: performance vs. on-chip memory capacity", args);

    EnergyModel em;
    Table t({"NPU", "domain", "TFLOPS", "SRAM (MB)", "SRAM area %",
             "model est. mm^2"});
    for (const NpuEntry &e : kSurvey) {
        t.addRow({e.name, e.domain, Table::fmtDouble(e.tflops, 0),
                  Table::fmtDouble(e.capacityMB, 1),
                  Table::fmtPercent(e.sramAreaRatio),
                  Table::fmtDouble(
                      em.sramAreaMm2(static_cast<int64_t>(
                          e.capacityMB * 1024 * 1024)),
                      1)});
    }
    t.print();

    // Observation 1: area ratio range.
    double lo = 1.0, hi = 0.0, cap_lo = 1e18, cap_hi = 0;
    for (const NpuEntry &e : kSurvey) {
        lo = std::min(lo, e.sramAreaRatio);
        hi = std::max(hi, e.sramAreaRatio);
        cap_lo = std::min(cap_lo, e.capacityMB);
        cap_hi = std::max(cap_hi, e.capacityMB);
    }
    std::printf("\nObservation 1: SRAM occupies %.0f%%..%.0f%% of die area; "
                "capacities span %.1f..%.0f MB.\n",
                lo * 100, hi * 100, cap_lo, cap_hi);

    // Observation 2: diminishing marginal TFLOPS per MB. Compare the
    // average TFLOPS/MB of the small-capacity half vs the large half.
    std::vector<NpuEntry> sorted(std::begin(kSurvey), std::end(kSurvey));
    std::sort(sorted.begin(), sorted.end(),
              [](const NpuEntry &a, const NpuEntry &b) {
                  return a.capacityMB < b.capacityMB;
              });
    auto density = [](const NpuEntry &e) { return e.tflops / e.capacityMB; };
    double small_half = 0, large_half = 0;
    size_t half = sorted.size() / 2;
    for (size_t i = 0; i < half; ++i)
        small_half += density(sorted[i]);
    for (size_t i = half; i < sorted.size(); ++i)
        large_half += density(sorted[i]);
    small_half /= half;
    large_half /= (sorted.size() - half);
    std::printf("Observation 2: performance per MB falls from %.2f "
                "TFLOPS/MB (small-capacity half)\n  to %.2f TFLOPS/MB "
                "(large-capacity half) — diminishing marginal benefit.\n",
                small_half, large_half);

    std::printf("Observation 3: Hanguang's 394MB SRAM-only design marks a "
                "saturated capacity\n  equivalent to unlimited memory for "
                "its inference scenarios.\n");
    return 0;
}
