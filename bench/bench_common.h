/**
 * @file
 * Shared helpers for the experiment harnesses: command-line handling
 * (--fast for CI-sized budgets, --full for paper-sized budgets,
 * --seed N, --metrics-out FILE), the standard accelerator/buffer
 * setups the paper's evaluation section uses, and the JSON metrics
 * sink CI consumes.
 */

#ifndef COCCO_BENCH_COMMON_H
#define COCCO_BENCH_COMMON_H

#include <cstdint>
#include <string>
#include <vector>

#include "core/metrics.h"
#include "mem/buffer_config.h"
#include "search/driver.h"
#include "sim/accelerator.h"
#include "sim/platform.h"

namespace cocco::bench {

/** Parsed harness options. */
struct BenchArgs
{
    bool full = false;   ///< paper-sized sample budgets
    uint64_t seed = 1;
    std::string metricsOut; ///< JSON metrics path ("" = don't write)

    /** Samples for partition-only searches (paper: 400,000). */
    int64_t partitionBudget() const { return full ? 400000 : 4000; }

    /** Samples for co-exploration searches (paper: 50,000). */
    int64_t coExploreBudget() const { return full ? 50000 : 3000; }

    /** Samples per capacity candidate in two-step schemes. */
    int64_t perCandidateBudget() const { return full ? 5000 : 400; }

    /** GA population (paper: 500 genomes). */
    int population() const { return full ? 500 : 50; }
};

/** Parse --fast/--full/--seed; prints the chosen mode. */
BenchArgs parseArgs(int argc, char **argv, const char *what);

/**
 * The standard run spec of the co-exploration studies for one
 * registry driver: co-explore budget, the bench population, the
 * per-candidate two-step budget, and the seed, all from @p args.
 * Resolve it through SearcherRegistry (raw CostModel + DseSpace) or
 * CoccoFramework::explore; tweak fields per study as needed.
 */
cocco::SearchSpec searchSpec(const std::string &algo,
                             const BenchArgs &args);

/** The paper's single-core evaluation platform (the "simba" preset). */
AcceleratorConfig paperAccelerator();

/** The fixed buffer of the partition studies: 1MB GLB + 1.125MB WBUF. */
BufferConfig paperFixedBuffer();

/** The four co-exploration models of Tables 1-3 / Figures 12-14. */
std::vector<std::string> coExploreModels();

/** Header banner for a harness. */
void banner(const char *title, const BenchArgs &args);

/**
 * Write the collected per-run metrics to args.metricsOut (no-op when
 * the flag was not given). Prints the path / any error to stdout and
 * returns false only on an I/O failure.
 */
bool writeMetrics(const BenchArgs &args, const char *tool,
                  const std::vector<RunMetrics> &runs);

} // namespace cocco::bench

#endif // COCCO_BENCH_COMMON_H
