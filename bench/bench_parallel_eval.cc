/**
 * @file
 * Parallel-evaluation + evaluation-cache microbench.
 *
 * Section 1 (threads): wall-clock throughput of batched population
 * evaluation (the GA driver end to end) at increasing thread counts,
 * on a fresh CostModel per run so no run warms another's profile
 * memo. Every parallel run must report the exact best objective and
 * trace of the serial run (the engine's determinism contract).
 *
 * Section 2 (cache): the evaluation-cache contract. A cache-disabled
 * run, a cold-cache run and a warm repeat (same seed, shared cache)
 * must be bit-identical; the warm repeat must serve at least half of
 * its evaluations from cache.
 *
 * Section 3 (pruning): the bound-pruning contract. A pruning-off and
 * a pruning-on GA run must be bit-identical (best, trace, samples),
 * and incumbent-screened evaluation (EvalEngine::evaluateBounded)
 * must track the same incumbent as exhaustive evaluation while
 * clearing a 2x throughput floor.
 *
 * --metrics-out FILE writes every run as a structured JSON record
 * (the artifact CI uploads). Exits non-zero on any contract
 * violation.
 */

#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/cocco.h"
#include "search/operators.h"
#include "util/table.h"

using namespace cocco;
using namespace cocco::bench;

namespace {

struct RunStats
{
    double seconds = 0.0;
    SearchResult result;
};

RunStats
runOnce(const Graph &g, const AcceleratorConfig &accel, int threads,
        int64_t budget, int population, uint64_t seed, bool cache_enabled,
        const std::shared_ptr<EvalCache> &cache, bool pruning = true)
{
    CostModel model(g, accel); // fresh memo: no cross-run warm-up
    DseSpace space = DseSpace::paperSpace(BufferStyle::Shared);
    GaOptions opts;
    opts.population = population;
    opts.sampleBudget = budget;
    opts.seed = seed;
    opts.threads = threads;
    opts.cacheEnabled = cache_enabled;
    opts.cache = cache;
    opts.pruning = pruning;

    auto t0 = std::chrono::steady_clock::now();
    RunStats stats;
    stats.result = GeneticSearch(model, space, opts).run();
    stats.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    return stats;
}

bool
sameResult(const SearchResult &a, const SearchResult &b)
{
    if (a.bestCost != b.bestCost || a.samples != b.samples ||
        a.trace.size() != b.trace.size())
        return false;
    for (size_t i = 0; i < a.trace.size(); ++i)
        if (a.trace[i].sample != b.trace[i].sample ||
            a.trace[i].bestCost != b.trace[i].bestCost)
            return false;
    return true;
}

RunMetrics
toMetrics(const std::string &name, const std::string &model,
          int threads, uint64_t seed, bool cache_enabled,
          const RunStats &s)
{
    RunMetrics m;
    m.name = name;
    m.model = model;
    m.threads = threads;
    m.seed = seed;
    m.samples = s.result.samples;
    m.bestCost = s.result.bestCost;
    m.wallSeconds = s.seconds;
    m.cacheEnabled = cache_enabled;
    m.cache = s.result.cacheStats;
    return m;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchArgs args = parseArgs(argc, argv, "parallel population evaluation");
    banner("Parallel evaluation engine: serial vs batched GA, "
           "evaluation cache",
           args);

    AcceleratorConfig accel = paperAccelerator();
    int64_t budget = args.full ? 20000 : 4000;
    int population = args.population();
    bool failed = false;
    std::vector<RunMetrics> metrics;

    int hw = static_cast<int>(std::thread::hardware_concurrency());
    std::printf("hardware threads: %d\n", hw);
    if (hw < 2)
        std::printf("note: single-core machine — parallel runs can only "
                    "verify determinism, not speed up\n");
    std::vector<int> thread_counts{1, 2, 4};
    if (hw > 4)
        thread_counts.push_back(hw);

    for (const std::string &name : {std::string("GoogleNet"),
                                    std::string("ResNet50")}) {
        Graph g = buildModel(name);
        std::printf("\n%s: %lld samples, population %d\n", name.c_str(),
                    static_cast<long long>(budget), population);

        // --- Section 1: thread scaling (per-run private caches). ---
        Table t({"threads", "time (s)", "samples/s", "speedup",
                 "deterministic"});
        RunStats serial;
        for (int threads : thread_counts) {
            RunStats s = runOnce(g, accel, threads, budget, population,
                                 args.seed, true, nullptr);
            if (threads == 1)
                serial = s;
            bool same = sameResult(serial.result, s.result);
            t.addRow({Table::fmtInt(threads),
                      Table::fmtDouble(s.seconds, 2),
                      Table::fmtDouble(s.result.samples / s.seconds, 0),
                      Table::fmtDouble(serial.seconds / s.seconds, 2) + "x",
                      same ? "yes" : "MISMATCH"});
            if (!same) {
                std::fprintf(stderr,
                             "error: threads=%d diverged from serial\n",
                             threads);
                failed = true;
            }
            metrics.push_back(toMetrics(
                "threads-" + std::to_string(threads), name, threads,
                args.seed, true, s));
        }
        t.print();
        std::printf("best objective %.6g after %lld samples\n",
                    serial.result.bestCost,
                    static_cast<long long>(serial.result.samples));

        // --- Section 2: the evaluation-cache contract. ---
        RunStats nocache = runOnce(g, accel, 1, budget, population,
                                   args.seed, false, nullptr);
        auto cache = std::make_shared<EvalCache>();
        RunStats cold = runOnce(g, accel, 1, budget, population, args.seed,
                                true, cache);
        RunStats warm = runOnce(g, accel, 1, budget, population, args.seed,
                                true, cache);

        auto served = [](const RunStats &s) {
            return static_cast<long long>(s.result.cacheStats.hits);
        };
        auto answered = [](const RunStats &s) {
            return static_cast<long long>(s.result.cacheStats.hits +
                                          s.result.cacheStats.misses);
        };
        Table ct({"run", "time (s)", "served/evals", "hit rate",
                  "identical"});
        auto crow = [&](const char *label, const RunStats &s,
                        bool cache_on) {
            bool same = sameResult(nocache.result, s.result);
            ct.addRow({label, Table::fmtDouble(s.seconds, 2),
                       cache_on ? Table::fmtInt(served(s)) + "/" +
                                      Table::fmtInt(answered(s))
                                : "-",
                       cache_on
                           ? Table::fmtDouble(
                                 100.0 * s.result.cacheStats.hitRate(), 1) +
                                 "%"
                           : "-",
                       same ? "yes" : "MISMATCH"});
            if (!same) {
                std::fprintf(stderr,
                             "error: %s diverged from the cache-disabled "
                             "run\n",
                             label);
                failed = true;
            }
        };
        crow("no-cache", nocache, false);
        crow("cold", cold, true);
        crow("warm", warm, true);
        ct.print();

        double warm_rate = warm.result.cacheStats.hitRate();
        std::printf("warm repeat: %lld/%lld evaluations served from cache "
                    "(%.1f%%)\n",
                    served(warm), answered(warm), 100.0 * warm_rate);
        if (warm_rate < 0.5) {
            std::fprintf(stderr,
                         "error: warm cache served %.1f%% < 50%% of "
                         "evaluations\n",
                         100.0 * warm_rate);
            failed = true;
        }

        metrics.push_back(
            toMetrics("cache-disabled", name, 1, args.seed, false,
                      nocache));
        metrics.push_back(
            toMetrics("cache-cold", name, 1, args.seed, true, cold));
        metrics.push_back(
            toMetrics("cache-warm", name, 1, args.seed, true, warm));

        // --- Section 3: the bound-pruning contract. ---
        // End-to-end first: a pruned GA run must reproduce the
        // unpruned run bit for bit (bounds only skip work that
        // cannot win). Cache off, so the evaluation-record path is
        // the one under test.
        RunStats unpruned = runOnce(g, accel, 1, budget, population,
                                    args.seed, false, nullptr, false);
        RunStats pruned = runOnce(g, accel, 1, budget, population,
                                  args.seed, false, nullptr, true);
        bool pruning_same = sameResult(unpruned.result, pruned.result);
        if (!pruning_same) {
            std::fprintf(stderr,
                         "error: pruning changed the GA result "
                         "(best %.17g vs %.17g)\n",
                         unpruned.result.bestCost,
                         pruned.result.bestCost);
            failed = true;
        }
        metrics.push_back(toMetrics("pruning-off", name, 1, args.seed,
                                    false, unpruned));
        metrics.push_back(toMetrics("pruning-on", name, 1, args.seed,
                                    false, pruned));

        // Throughput: incumbent-screened evaluation against the same
        // random genome stream, same incumbent tracking as an
        // exhaustive pass. Screening may only skip genomes whose
        // bound proves they cannot beat the incumbent, so both passes
        // must land on the identical best.
        DseSpace space = DseSpace::paperSpace(BufferStyle::Shared);
        Rng grng(args.seed * 77 + 1);
        std::vector<Genome> stream;
        for (int64_t i = 0; i < budget; ++i)
            stream.push_back(randomGenome(g, space, grng));

        auto screen = [&](bool prune, double *best_out,
                          uint64_t *rejected) {
            CostModel model(g, accel);
            EvalOptions opts;
            opts.cacheEnabled = false;
            opts.threads = 1;
            opts.pruning = prune;
            EvalEngine eng(model, space, opts);
            double best = kInfeasiblePenalty;
            auto t0 = std::chrono::steady_clock::now();
            for (const Genome &x : stream) {
                Genome t = x;
                if (prune) {
                    bool skipped = false;
                    double c = eng.evaluateBounded(t, best, &skipped);
                    if (!skipped)
                        best = std::min(best, c);
                } else {
                    best = std::min(best, eng.evaluate(t));
                }
            }
            double sec = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
            *best_out = best;
            if (rejected)
                *rejected = eng.boundRejections();
            return static_cast<double>(stream.size()) / sec;
        };
        double best_exh = 0.0, best_scr = 0.0;
        uint64_t rejected = 0;
        double rate_exh = screen(false, &best_exh, nullptr);
        double rate_scr = screen(true, &best_scr, &rejected);
        double speedup = rate_scr / rate_exh;
        std::printf("pruning: GA bit-identical %s; screened %.0f vs "
                    "exhaustive %.0f evals/s (%.2fx, %llu of %zu "
                    "rejected)\n",
                    pruning_same ? "yes" : "NO", rate_scr, rate_exh,
                    speedup, static_cast<unsigned long long>(rejected),
                    stream.size());
        if (best_exh != best_scr) {
            std::fprintf(stderr,
                         "error: screening changed the tracked best "
                         "(%.17g vs %.17g)\n",
                         best_exh, best_scr);
            failed = true;
        }
        if (speedup < 2.0) {
            std::fprintf(stderr,
                         "error: screened evaluation %.2fx below the 2x "
                         "throughput floor\n",
                         speedup);
            failed = true;
        }
    }

    if (!writeMetrics(args, "bench_parallel_eval", metrics))
        failed = true;
    return failed ? 1 : 0;
}
