/**
 * @file
 * Parallel-evaluation microbench: wall-clock throughput of batched
 * population evaluation (the GA driver end to end) at increasing
 * thread counts, on a fresh CostModel per run so no run warms
 * another's profile memo.
 *
 * Also the determinism check for the engine's headline contract:
 * every parallel run must report the exact best objective and trace
 * of the serial run.
 */

#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/cocco.h"
#include "util/table.h"

using namespace cocco;
using namespace cocco::bench;

namespace {

struct RunStats
{
    double seconds = 0.0;
    SearchResult result;
};

RunStats
runOnce(const Graph &g, const AcceleratorConfig &accel, int threads,
        int64_t budget, int population, uint64_t seed)
{
    CostModel model(g, accel); // fresh memo: no cross-run warm-up
    DseSpace space = DseSpace::paperSpace(BufferStyle::Shared);
    GaOptions opts;
    opts.population = population;
    opts.sampleBudget = budget;
    opts.seed = seed;
    opts.threads = threads;

    auto t0 = std::chrono::steady_clock::now();
    RunStats stats;
    stats.result = GeneticSearch(model, space, opts).run();
    stats.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    return stats;
}

bool
sameResult(const SearchResult &a, const SearchResult &b)
{
    if (a.bestCost != b.bestCost || a.samples != b.samples ||
        a.trace.size() != b.trace.size())
        return false;
    for (size_t i = 0; i < a.trace.size(); ++i)
        if (a.trace[i].sample != b.trace[i].sample ||
            a.trace[i].bestCost != b.trace[i].bestCost)
            return false;
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchArgs args = parseArgs(argc, argv, "parallel population evaluation");
    banner("Parallel evaluation engine: serial vs batched GA", args);

    AcceleratorConfig accel = paperAccelerator();
    int64_t budget = args.full ? 20000 : 4000;
    int population = args.population();

    int hw = static_cast<int>(std::thread::hardware_concurrency());
    std::printf("hardware threads: %d\n", hw);
    if (hw < 2)
        std::printf("note: single-core machine — parallel runs can only "
                    "verify determinism, not speed up\n");
    std::vector<int> thread_counts{1, 2, 4};
    if (hw > 4)
        thread_counts.push_back(hw);

    for (const std::string &name : {std::string("GoogleNet"),
                                    std::string("ResNet50")}) {
        Graph g = buildModel(name);
        std::printf("\n%s: %lld samples, population %d\n", name.c_str(),
                    static_cast<long long>(budget), population);

        Table t({"threads", "time (s)", "samples/s", "speedup",
                 "deterministic"});
        RunStats serial;
        for (int threads : thread_counts) {
            RunStats s = runOnce(g, accel, threads, budget, population,
                                 args.seed);
            if (threads == 1)
                serial = s;
            bool same = sameResult(serial.result, s.result);
            t.addRow({Table::fmtInt(threads),
                      Table::fmtDouble(s.seconds, 2),
                      Table::fmtDouble(s.result.samples / s.seconds, 0),
                      Table::fmtDouble(serial.seconds / s.seconds, 2) + "x",
                      same ? "yes" : "MISMATCH"});
            if (!same)
                std::fprintf(stderr,
                             "error: threads=%d diverged from serial\n",
                             threads);
        }
        t.print();
        std::printf("best objective %.6g after %lld samples\n",
                    serial.result.bestCost,
                    static_cast<long long>(serial.result.samples));
    }
    return 0;
}
