/**
 * @file
 * Google-benchmark microbenchmarks of the framework's hot paths: the
 * tile-flow derivation, subgraph profiling (with and without the
 * memoization cache), partition repair, and one GA generation. These
 * are the kernels that bound how many samples per second the search
 * can evaluate.
 */

#include <benchmark/benchmark.h>

#include "models/models.h"
#include "partition/repair.h"
#include "search/ga.h"
#include "search/operators.h"
#include "sim/cost_model.h"
#include "tileflow/footprint.h"
#include "util/logging.h"

using namespace cocco;

namespace {

const Graph &
resnet()
{
    static const Graph g = buildResNet50();
    return g;
}

std::vector<NodeId>
windowOf(const Graph &g, int start, int len)
{
    std::vector<NodeId> out;
    for (int i = start; i < start + len && i < g.size(); ++i)
        out.push_back(i);
    return out;
}

} // namespace

static void
BM_TileFlowDerivation(benchmark::State &state)
{
    const Graph &g = resnet();
    std::vector<NodeId> sub = windowOf(g, 3, static_cast<int>(state.range(0)));
    for (auto _ : state) {
        ExecutionScheme s = deriveConsumptionScheme(g, sub, 4);
        benchmark::DoNotOptimize(s.actFootprintBytes);
    }
}
BENCHMARK(BM_TileFlowDerivation)->Arg(1)->Arg(4)->Arg(16)->Arg(32);

static void
BM_BestSchemeMapper(benchmark::State &state)
{
    const Graph &g = resnet();
    std::vector<NodeId> sub = windowOf(g, 3, 8);
    for (auto _ : state) {
        ExecutionScheme s = bestScheme(g, sub);
        benchmark::DoNotOptimize(s.outTile);
    }
}
BENCHMARK(BM_BestSchemeMapper);

static void
BM_SubgraphProfileCold(benchmark::State &state)
{
    const Graph &g = resnet();
    AcceleratorConfig accel;
    std::vector<NodeId> sub = windowOf(g, 3, 8);
    for (auto _ : state) {
        state.PauseTiming();
        CostModel model(g, accel); // fresh cache each iteration
        state.ResumeTiming();
        benchmark::DoNotOptimize(model.profile(sub).actFootprintBytes);
    }
}
BENCHMARK(BM_SubgraphProfileCold);

static void
BM_SubgraphProfileCached(benchmark::State &state)
{
    const Graph &g = resnet();
    AcceleratorConfig accel;
    CostModel model(g, accel);
    std::vector<NodeId> sub = windowOf(g, 3, 8);
    model.profile(sub); // warm
    for (auto _ : state)
        benchmark::DoNotOptimize(model.profile(sub).actFootprintBytes);
}
BENCHMARK(BM_SubgraphProfileCached);

static void
BM_PartitionCost(benchmark::State &state)
{
    const Graph &g = resnet();
    AcceleratorConfig accel;
    CostModel model(g, accel);
    BufferConfig buf;
    buf.style = BufferStyle::Shared;
    buf.sharedBytes = 1024 * 1024;
    Partition p = Partition::fixedRuns(g, 3);
    p = repairToCapacity(g, std::move(p), model, buf);
    for (auto _ : state) {
        GraphCost c = model.partitionCost(p, buf);
        benchmark::DoNotOptimize(c.energyPj);
    }
}
BENCHMARK(BM_PartitionCost);

static void
BM_RepairStructure(benchmark::State &state)
{
    const Graph &g = resnet();
    Rng rng(5);
    Partition junk;
    junk.block.resize(g.size());
    for (int &b : junk.block)
        b = static_cast<int>(rng.index(12));
    for (auto _ : state) {
        Partition p = junk;
        p = repairStructure(g, std::move(p));
        benchmark::DoNotOptimize(p.numBlocks);
    }
}
BENCHMARK(BM_RepairStructure);

static void
BM_CrossoverOperator(benchmark::State &state)
{
    const Graph &g = resnet();
    DseSpace space = DseSpace::paperSpace(BufferStyle::Shared);
    Rng rng(7);
    Genome dad = randomGenome(g, space, rng);
    Genome mom = randomGenome(g, space, rng);
    for (auto _ : state) {
        Genome child = crossover(g, space, dad, mom, rng);
        benchmark::DoNotOptimize(child.part.numBlocks);
    }
}
BENCHMARK(BM_CrossoverOperator);

static void
BM_GaGeneration(benchmark::State &state)
{
    const Graph &g = resnet();
    AcceleratorConfig accel;
    CostModel model(g, accel);
    DseSpace space = DseSpace::paperSpace(BufferStyle::Shared);
    for (auto _ : state) {
        GaOptions o;
        o.population = 20;
        o.sampleBudget = 40; // init + one generation
        o.seed = 11;
        SearchResult r = GeneticSearch(model, space, o).run();
        benchmark::DoNotOptimize(r.bestCost);
    }
}
BENCHMARK(BM_GaGeneration);

BENCHMARK_MAIN();
