/**
 * @file
 * Table 2 reproduction: the Table 1 study with a shared buffer
 * (activations and weights in one space, 128KB..3072KB step 64KB).
 *
 * Expected shape: same ranking as Table 1, and the best shared-buffer
 * costs are generally lower than the corresponding separate-buffer
 * costs (the paper's observation that sharing improves efficiency).
 */

#include <cstdio>
#include <cstring>

#include "bench_common.h"
#include "core/cocco.h"
#include "util/table.h"

using namespace cocco;
using namespace cocco::bench;

namespace {

double
finalCost(CoccoFramework &cocco, const BufferConfig &buf,
          const BenchArgs &args)
{
    SearchSpec spec = searchSpec("ga", args);
    spec.eval.coExplore = false;
    spec.eval.seed = args.seed + 99;
    spec.fixedBuffer = buf;
    CoccoResult r = cocco.explore(spec);
    return objective(r.cost, buf, 0.002, Metric::Energy);
}

} // namespace

int
main(int argc, char **argv)
{
    BenchArgs args =
        parseArgs(argc, argv, "Table 2: co-exploration, shared buffer");
    banner("Table 2: shared-buffer co-exploration (alpha=0.002, energy)",
           args);

    AcceleratorConfig accel = paperAccelerator();

    for (const std::string &name : coExploreModels()) {
        Graph g = buildModel(name);
        CoccoFramework cocco(g, accel);
        Table t({"method", "Size", "Cost"});

        for (auto [label, buf] :
             {std::pair{"Buf(S)",
                        BufferConfig::fixedSmall(BufferStyle::Shared)},
              std::pair{"Buf(M)",
                        BufferConfig::fixedMedium(BufferStyle::Shared)},
              std::pair{"Buf(L)",
                        BufferConfig::fixedLarge(BufferStyle::Shared)}}) {
            double cost = finalCost(cocco, buf, args);
            t.addRow({label, buf.str(), Table::fmtSci(cost)});
        }
        t.addRule();

        // Sampling methods through one declarative path (see Table 1).
        for (auto [label, key] : {std::pair{"RS+GA", "ts-random"},
                                  std::pair{"GS+GA", "ts-grid"},
                                  std::pair{"SA", "sa"},
                                  std::pair{"Cocco", "ga"}}) {
            SearchSpec spec = searchSpec(key, args);
            spec.style = BufferStyle::Shared;
            CoccoResult r = cocco.explore(spec);
            if (std::strcmp(label, "SA") == 0)
                t.addRule();
            t.addRow({label, r.buffer.str(),
                      Table::fmtSci(finalCost(cocco, r.buffer, args))});
        }

        std::printf("%s:\n", name.c_str());
        t.print();
        std::printf("\n");
    }
    std::printf("Expected shape (paper Table 2): Cocco lowest per model; "
                "shared-buffer\ncosts generally below the separate-buffer "
                "costs of Table 1.\n");
    return 0;
}
