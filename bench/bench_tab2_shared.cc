/**
 * @file
 * Table 2 reproduction: the Table 1 study with a shared buffer
 * (activations and weights in one space, 128KB..3072KB step 64KB).
 *
 * Expected shape: same ranking as Table 1, and the best shared-buffer
 * costs are generally lower than the corresponding separate-buffer
 * costs (the paper's observation that sharing improves efficiency).
 */

#include <cstdio>

#include "bench_common.h"
#include "core/cocco.h"
#include "search/sa.h"
#include "search/two_step.h"
#include "util/table.h"

using namespace cocco;
using namespace cocco::bench;

namespace {

double
finalCost(CoccoFramework &cocco, const BufferConfig &buf,
          const BenchArgs &args)
{
    GaOptions opts;
    opts.sampleBudget = args.coExploreBudget();
    opts.population = args.population();
    opts.metric = Metric::Energy;
    opts.seed = args.seed + 99;
    CoccoResult r = cocco.partitionOnly(buf, opts);
    return objective(r.cost, buf, 0.002, Metric::Energy);
}

} // namespace

int
main(int argc, char **argv)
{
    BenchArgs args =
        parseArgs(argc, argv, "Table 2: co-exploration, shared buffer");
    banner("Table 2: shared-buffer co-exploration (alpha=0.002, energy)",
           args);

    AcceleratorConfig accel = paperAccelerator();

    for (const std::string &name : coExploreModels()) {
        Graph g = buildModel(name);
        CoccoFramework cocco(g, accel);
        Table t({"method", "Size", "Cost"});

        for (auto [label, buf] :
             {std::pair{"Buf(S)",
                        BufferConfig::fixedSmall(BufferStyle::Shared)},
              std::pair{"Buf(M)",
                        BufferConfig::fixedMedium(BufferStyle::Shared)},
              std::pair{"Buf(L)",
                        BufferConfig::fixedLarge(BufferStyle::Shared)}}) {
            double cost = finalCost(cocco, buf, args);
            t.addRow({label, buf.str(), Table::fmtSci(cost)});
        }
        t.addRule();

        DseSpace space = DseSpace::paperSpace(BufferStyle::Shared);
        CostModel &model = cocco.model();

        TwoStepOptions ts;
        ts.sampleBudget = args.coExploreBudget();
        ts.samplesPerCandidate = args.perCandidateBudget();
        ts.population = args.population();
        ts.seed = args.seed;
        for (auto [label, fn] : {std::pair{"RS+GA", &twoStepRandom},
                                 std::pair{"GS+GA", &twoStepGrid}}) {
            SearchResult r = fn(model, space, ts);
            double cost = finalCost(cocco, r.bestBuffer, args);
            t.addRow({label, r.bestBuffer.str(), Table::fmtSci(cost)});
        }
        t.addRule();

        SaOptions sa;
        sa.sampleBudget = args.coExploreBudget();
        sa.seed = args.seed;
        SearchResult r_sa = simulatedAnnealing(model, space, sa);
        t.addRow({"SA", r_sa.bestBuffer.str(),
                  Table::fmtSci(finalCost(cocco, r_sa.bestBuffer, args))});

        GaOptions ga;
        ga.sampleBudget = args.coExploreBudget();
        ga.population = args.population();
        ga.seed = args.seed;
        CoccoResult r_ga = cocco.coExplore(BufferStyle::Shared, ga);
        t.addRow({"Cocco", r_ga.buffer.str(),
                  Table::fmtSci(finalCost(cocco, r_ga.buffer, args))});

        std::printf("%s:\n", name.c_str());
        t.print();
        std::printf("\n");
    }
    std::printf("Expected shape (paper Table 2): Cocco lowest per model; "
                "shared-buffer\ncosts generally below the separate-buffer "
                "costs of Table 1.\n");
    return 0;
}
